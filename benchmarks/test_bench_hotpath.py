"""Microbenchmarks of the worker hot path.

Three generations of the same question — how fast can the simulator advance
one cluster step? — plus the cost of shrinking what each step transmits:

**Batched engine vs sequential in-place path** (``test_bench_hotpath_batched``,
the PR-3 headline).  ``execution="batched"`` advances all K workers through
one stacked forward/backward (``(K, B, in) @ (K, in, out)`` GEMMs over views
of the cluster's ``(K, d)`` matrices) and one ``(K, d)`` optimizer update,
replacing K Python-level per-worker passes.  The grid times full training
steps — sampling, forward, loss, backward, optimizer — via ``cluster.step_all``
on both engines.  The d≈1e5 model is a deep-narrow MLP (260 hidden layers of
width 19): like the paper's DenseNet-class models, depth dominates width, and
that is exactly the regime where per-layer Python dispatch crushes the
sequential path at large K.  Acceptance bar: ≥4× steps/sec at K=32, d≈1e5.

**Parameter plane vs seed copy path** (``test_bench_hotpath_speedup``, the
PR-1 baseline, kept as a regression canary).  Drives the update/drift/sync
plumbing with backprop excluded, comparing the in-place plane against the
seed's gather → copy-step → scatter data flow.  Bar: ≥2× at d≈1e5.

**Compressed synchronization on the batched engine**
(``test_bench_hotpath_compressed_sync``, the ISSUE-5 cell).  A
communication-heavy Local-SGD loop (sync every ``τ = 2`` steps, batch 16 —
twice BSP's sync sparsity, far below FDA's typical cadence) with row-wise
error-feedback top-k on the cluster's ``(K, d)`` drift matrix, versus the
exact AllReduce.  The compression must stay nearly free next to the stacked
forward/backward (bar: ≥0.75× uncompressed steps/s at K=32, d≈1e5) while
the fabric's model-sync ledger shrinks ≥4× (asserted exactly — byte
accounting is deterministic).  The compressed path is engineered for this:
the EF residual matrix doubles as the in-place drift accumulator, top-k
selection runs on cached float32 magnitudes partitioned from the sparse
end, and a sync allocates nothing beyond the k-sized payload arrays.

**float32 vs float64 on the batched engine** (``test_bench_hotpath_dtype``,
the dtype-parametric-plane cell).  The same batched training loop at both
plane dtypes on a *bandwidth-bound* d≈1e5 model (9 hidden layers of width
100, batch 16): wide stacked GEMMs and the ``(K, d)`` optimizer update are
memory-traffic-limited, exactly where halving the element size pays.  Bars:
float32 delivers ≥1.5× steps/s at K=32, d≈1e5, and the fabric ledger charges
*exactly* half the sync bytes (deterministic — asserted without retries).
The deep-narrow dispatch-bound config is deliberately not the acceptance
cell: Python dispatch over 260 tiny layers is dtype-independent, so it
measures the interpreter, not the memory system.

All benches emit their grids into ``BENCH_hotpath.json`` (see
``bench_json.py``) so CI can track the perf trajectory PR-over-PR.
``REPRO_BENCH_SMALL=1`` trims sizes; ``REPRO_BENCH_STRICT=0`` downgrades
wall-clock assertions to warnings on runners whose timing cannot be trusted.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from benchmarks.bench_json import emit_bench_section
from repro.core.fda import FDATrainer
from repro.core.monitor import make_monitor
from repro.core.timeline import Timeline
from repro.data.datasets import Dataset
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.worker import Worker
from repro.nn.architectures import mlp
from repro.optim.sgd import SGD

SMALL = os.environ.get("REPRO_BENCH_SMALL", "0") == "1"
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

#: (features, hidden width, hidden depth, classes) per target model dimension
#: for the plane-vs-seed plumbing benchmark (multi-tensor MLPs, 20 arrays).
MODEL_CONFIGS = {10_000: (50, 30, 9, 33), 100_000: (150, 100, 9, 40)}

#: Model grid for the batched-engine benchmark.  The d≈1e5 entry is
#: deliberately deep and narrow (260 layers of width 19, DenseNet-class
#: depth): large-K simulation cost is dominated by per-layer Python dispatch,
#: which is precisely what the batched engine removes.
BATCHED_MODEL_CONFIGS = {10_000: (50, 30, 9, 33), 100_000: (40, 19, 260, 33)}


def build_cluster(
    num_workers: int,
    dimension_key: int,
    execution: str = "sequential",
    configs=MODEL_CONFIGS,
    dropout_rate: float = 0.0,
    compression=None,
    batch_size: int = 2,
    dtype=None,
) -> SimulatedCluster:
    features, width, depth, classes = configs[dimension_key]
    rng = np.random.default_rng(0)
    workers = []
    for worker_id in range(num_workers):
        model = mlp(features, classes, hidden_units=(width,) * depth, seed=1)
        x = rng.normal(size=(max(16, 2 * batch_size), features))
        y = rng.integers(0, classes, size=max(16, 2 * batch_size))
        workers.append(
            Worker(
                worker_id,
                model,
                Dataset(x, y, classes),
                SGD(0.01),
                batch_size=batch_size,
                seed=worker_id,
            )
        )
    timeline = (
        Timeline(num_workers, dropout_rate=dropout_rate, seed=11)
        if dropout_rate
        else None
    )
    return SimulatedCluster(
        workers, execution=execution, timeline=timeline, compression=compression,
        dtype=dtype,
    )


def prime_gradients(cluster: SimulatedCluster) -> None:
    """One real backward pass so the gradient planes hold live values."""
    for worker in cluster.workers:
        worker.model.train_batch(*worker._sampler.sample())


def best_of(repeats: int, fn) -> float:
    """Minimum wall-clock seconds over ``repeats`` invocations of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- the batched-engine headline ------------------------------------------------


def measure_engine_rates(num_workers: int, dimension_key: int, dropout_rate: float = 0.0):
    """One grid cell: ``(sequential steps/s, batched steps/s, d)`` from
    full-training-step timings of both engines.

    With ``dropout_rate`` both clusters carry the *same* dropout timeline
    seed and consume their mask streams at the same call indices, so the
    engines step identical worker subsets — the ratio is pure execution
    speed, not luck of the draw.
    """
    steps = 6 if SMALL else 12
    rates = {}
    dimension = 0
    for execution in ("sequential", "batched"):
        cluster = build_cluster(
            num_workers, dimension_key, execution=execution,
            configs=BATCHED_MODEL_CONFIGS, dropout_rate=dropout_rate,
        )
        dimension = cluster.model_dimension

        def run_steps(cluster=cluster):
            # sample_participation() is None (and draw-free) without dropout.
            for _ in range(steps):
                cluster.step_all(active=cluster.timeline.sample_participation())

        run_steps()  # warmup: allocate optimizer/masked-scratch state
        elapsed = best_of(3, run_steps)
        rates[execution] = steps / elapsed
    return rates["sequential"], rates["batched"], dimension


def run_engine_speedup_bench(
    section: str,
    title: str,
    grid,
    acceptance,
    bar: float,
    dropout_rate: float = 0.0,
) -> None:
    """Shared scaffold for the engine-speedup benches: measure the ``grid``
    of ``(K, dimension_key)`` cells, print the table, re-measure the
    ``acceptance`` cell until it clears ``bar`` (best-of counts — shared
    runner wall clocks are noisy), emit the rows into ``BENCH_hotpath.json``
    under ``section``, and assert the bar (a warning under
    REPRO_BENCH_STRICT=0, set by CI)."""
    label = "masked batched" if dropout_rate else "batched"
    print(f"\n=== {title} ===")
    print(
        f"{'K':>4} {'d':>8} {'seq steps/s':>12} {'batched steps/s':>16} {'speedup':>8}"
    )
    rows = []
    speedups = {}
    for num_workers, dimension_key in grid:
        sequential_rate, batched_rate, dimension = measure_engine_rates(
            num_workers, dimension_key, dropout_rate
        )
        speedup = batched_rate / sequential_rate
        speedups[(num_workers, dimension_key)] = speedup
        row = {
            "K": num_workers,
            "d": dimension,
            "dimension_key": dimension_key,
            "sequential_steps_per_sec": round(sequential_rate, 2),
            "batched_steps_per_sec": round(batched_rate, 2),
            "speedup": round(speedup, 3),
        }
        if dropout_rate:
            row["dropout_rate"] = dropout_rate
        rows.append(row)
        print(
            f"{num_workers:>4} {dimension:>8} {sequential_rate:>12,.1f} "
            f"{batched_rate:>16,.1f} {speedup:>7.2f}x"
        )

    best = speedups[acceptance]
    attempts = 1
    while STRICT and best < bar and attempts < 4:
        sequential_rate, batched_rate, _ = measure_engine_rates(
            acceptance[0], acceptance[1], dropout_rate
        )
        best = max(best, batched_rate / sequential_rate)
        attempts += 1
        print(
            f"  re-measured {label} K={acceptance[0]} d~{acceptance[1]}: "
            f"best speedup now {best:.2f}x"
        )
    for row in rows:
        if (row["K"], row["dimension_key"]) == acceptance:
            row["speedup_best_of_retries"] = round(best, 3)
    emit_bench_section("hotpath", section, rows)
    if not STRICT and best < bar:
        print(f"  WARNING: {label} speedup {best:.2f}x < {bar}x (REPRO_BENCH_STRICT=0)")
        return
    assert best >= bar, (
        f"expected the {label} engine to deliver at least {bar}x full-step "
        f"throughput at K={acceptance[0]}, d~{acceptance[1]}"
        + (f" with {dropout_rate:.0%} dropout" if dropout_rate else "")
        + f"; best of {attempts} runs was {best:.2f}x"
    )


@pytest.mark.benchmark(group="hotpath")
def test_bench_hotpath_batched_speedup():
    # Acceptance bar (ISSUE 3): >= 4x full-step throughput at K=32, d~1e5.
    run_engine_speedup_bench(
        "batched-engine",
        "cluster step: batched engine vs sequential in-place path",
        grid=[(8, 10_000), (8, 100_000), (32, 10_000), (32, 100_000)],
        acceptance=(32, 100_000),
        bar=4.0,
    )


@pytest.mark.benchmark(group="hotpath")
def test_bench_hotpath_masked_batched_speedup():
    # Acceptance bar (ISSUE 4): the masked (A, d) gather/compute/scatter path
    # must keep >= 3x full-step throughput at K=32, d~1e5 with 20% dropout.
    run_engine_speedup_bench(
        "batched-engine-masked",
        "cluster step under 20% dropout: masked batched vs sequential",
        grid=[(8, 100_000), (32, 100_000)],
        acceptance=(32, 100_000),
        bar=3.0,
        dropout_rate=0.2,
    )


@pytest.mark.benchmark(group="hotpath")
def test_bench_hotpath_masked_batched_matches_sequential():
    """The benchmarked masked path must train like the sequential engine."""
    sequential = build_cluster(4, 10_000, "sequential", BATCHED_MODEL_CONFIGS, 0.3)
    batched = build_cluster(4, 10_000, "batched", BATCHED_MODEL_CONFIGS, 0.3)
    for _ in range(5):
        loss_seq = sequential.step_all(active=sequential.timeline.sample_participation())
        loss_bat = batched.step_all(active=batched.timeline.sample_participation())
        np.testing.assert_allclose(loss_seq, loss_bat, rtol=1e-6)
    np.testing.assert_allclose(
        sequential.parameter_matrix, batched.parameter_matrix, rtol=1e-6
    )


# -- float32 vs float64 on the batched engine (dtype-parametric plane) ----------

#: Model grid for the dtype benchmark: the *wide* d≈1e5 MLP (9 hidden layers
#: of width 100), where stacked GEMMs and the (K, d) update are bandwidth
#: bound and the element size is the lever.  Shapes match MODEL_CONFIGS.
DTYPE_MODEL_CONFIGS = {10_000: (50, 30, 9, 33), 100_000: (150, 100, 9, 40)}

#: Worker mini-batch of the dtype cell: enough rows per stacked GEMM that
#: BLAS, not per-layer dispatch, carries the step.
DTYPE_BENCH_BATCH = 16


def measure_dtype_rates(num_workers: int, dimension_key: int):
    """One cell: steps/s and per-sync ledger bytes at float64 vs float32.

    Both clusters are built identically (same seeds, same batched engine) and
    run the same full training steps plus one synchronization, so the rate
    ratio is pure dtype and the byte ratio is pure itemsize.
    """
    steps = 4 if SMALL else 10
    rates, sync_bytes = {}, {}
    dimension = 0
    for dtype in ("float64", "float32"):
        cluster = build_cluster(
            num_workers, dimension_key, execution="batched",
            configs=DTYPE_MODEL_CONFIGS, batch_size=DTYPE_BENCH_BATCH, dtype=dtype,
        )
        dimension = cluster.model_dimension

        def run_steps(cluster=cluster):
            for _ in range(steps):
                cluster.step_all()

        run_steps()  # warmup: optimizer state, layer scratch, BLAS threads
        elapsed = best_of(3, run_steps)
        rates[dtype] = steps / elapsed
        bytes_before = cluster.total_bytes
        cluster.synchronize(include_buffers=False)
        sync_bytes[dtype] = cluster.total_bytes - bytes_before
    return rates, sync_bytes, dimension


@pytest.mark.benchmark(group="hotpath")
def test_bench_hotpath_dtype():
    # Acceptance bars: float32 delivers >= 1.5x batched steps/s at K=32,
    # d~1e5, and charges exactly half the sync bytes (deterministic).
    throughput_bar = 1.5
    grid = [(8, 100_000), (32, 100_000)]
    acceptance = (32, 100_000)
    print("\n=== plane dtype: float32 fast mode vs float64 reference (batched) ===")
    print(
        f"{'K':>4} {'d':>8} {'f64 steps/s':>12} {'f32 steps/s':>12} "
        f"{'speedup':>8} {'sync B f64':>11} {'sync B f32':>11}"
    )
    rows = []
    measured = {}
    for num_workers, dimension_key in grid:
        rates, sync_bytes, dimension = measure_dtype_rates(num_workers, dimension_key)
        speedup = rates["float32"] / rates["float64"]
        measured[(num_workers, dimension_key)] = speedup
        # Itemsize conservation is exact and holds on every cell.
        assert sync_bytes["float64"] == 2 * sync_bytes["float32"], (
            f"float32 must charge exactly half the sync bytes, got "
            f"{sync_bytes['float32']} vs {sync_bytes['float64']}"
        )
        rows.append(
            {
                "K": num_workers,
                "d": dimension,
                "dimension_key": dimension_key,
                "batch_size": DTYPE_BENCH_BATCH,
                "float64_steps_per_sec": round(rates["float64"], 2),
                "float32_steps_per_sec": round(rates["float32"], 2),
                "speedup": round(speedup, 3),
                "sync_bytes_float64": sync_bytes["float64"],
                "sync_bytes_float32": sync_bytes["float32"],
            }
        )
        print(
            f"{num_workers:>4} {dimension:>8} {rates['float64']:>12,.1f} "
            f"{rates['float32']:>12,.1f} {speedup:>7.2f}x "
            f"{sync_bytes['float64']:>11,} {sync_bytes['float32']:>11,}"
        )

    best = measured[acceptance]
    attempts = 1
    while STRICT and best < throughput_bar and attempts < 4:
        rates, _, _ = measure_dtype_rates(*acceptance)
        best = max(best, rates["float32"] / rates["float64"])
        attempts += 1
        print(
            f"  re-measured dtype cell K={acceptance[0]} d~{acceptance[1]}: "
            f"best speedup now {best:.2f}x"
        )
    for row in rows:
        if (row["K"], row["dimension_key"]) == acceptance:
            row["speedup_best_of_retries"] = round(best, 3)
    emit_bench_section("hotpath", "dtype", rows)
    if not STRICT and best < throughput_bar:
        print(
            f"  WARNING: float32 speedup {best:.2f}x < {throughput_bar}x "
            "(REPRO_BENCH_STRICT=0)"
        )
        return
    assert best >= throughput_bar, (
        f"expected float32 to deliver at least {throughput_bar}x batched "
        f"steps/s at K={acceptance[0]}, d~{acceptance[1]}; best of "
        f"{attempts} runs was {best:.2f}x"
    )


@pytest.mark.benchmark(group="hotpath")
def test_bench_hotpath_dtype_float32_trains_finite():
    """The benchmarked float32 cell must be a real training loop, not NaN soup."""
    cluster = build_cluster(
        4, 10_000, execution="batched", configs=DTYPE_MODEL_CONFIGS,
        batch_size=DTYPE_BENCH_BATCH, dtype="float32",
    )
    losses = [cluster.step_all() for _ in range(5)]
    assert all(np.isfinite(loss) for loss in losses)
    assert cluster.parameter_matrix.dtype == np.float32
    assert np.isfinite(cluster.parameter_matrix).all()


# -- compressed synchronization on the batched engine (ISSUE-5) ------------------

#: The benchmarked compression: error-feedback top-k keeping 5% of the drift,
#: i.e. a 10x smaller sync payload (2 float32-equivalents per kept entry).
COMPRESSED_SYNC_SPEC = ("topk", 0.05, True)

#: Local steps between synchronizations (Local-SGD cadence) and the worker
#: mini-batch size of the compressed-sync cell.  τ=2 keeps the loop firmly
#: communication-heavy (BSP syncs every step, FDA typically far less often)
#: while batch 16 gives the stacked forward/backward a realistic amount of
#: work per step — the regime the ~1.3x-overhead claim is about.
COMPRESSED_SYNC_TAU = 2
COMPRESSED_SYNC_BATCH = 16


def _compressed_sync_config():
    from repro.compression import CompressionConfig

    name, ratio, error_feedback = COMPRESSED_SYNC_SPEC
    return CompressionConfig(name, ratio=ratio, error_feedback=error_feedback)


def measure_compressed_sync(num_workers: int, dimension_key: int):
    """One cell: steps/s and per-sync model bytes for the exact vs compressed
    collective, both on the batched engine at the τ=2 Local-SGD cadence.

    Every timed round is ``τ`` ``step_all`` calls plus one ``synchronize``;
    the rate reported is local steps per second.  Byte totals come from the
    fabric ledger of the timed clusters, so the reported ratio is exactly
    what a training run would be charged.
    """
    rounds = 2 if SMALL else 4
    tau = COMPRESSED_SYNC_TAU
    rates, sync_bytes = {}, {}
    dimension = 0
    for label, compression in (("exact", None), ("compressed", _compressed_sync_config())):
        cluster = build_cluster(
            num_workers, dimension_key, execution="batched",
            configs=BATCHED_MODEL_CONFIGS, compression=compression,
            batch_size=COMPRESSED_SYNC_BATCH,
        )
        cluster.broadcast_parameters(cluster.workers[0].get_parameters())
        dimension = cluster.model_dimension

        def run_steps(cluster=cluster):
            for _ in range(rounds):
                for _ in range(tau):
                    cluster.step_all()
                cluster.synchronize(include_buffers=False)

        run_steps()  # warmup: optimizer state, residual matrix, scratch
        bytes_before, syncs_before = cluster.total_bytes, cluster.synchronization_count
        elapsed = best_of(3, run_steps)
        rates[label] = rounds * tau / elapsed
        sync_bytes[label] = (cluster.total_bytes - bytes_before) // (
            cluster.synchronization_count - syncs_before
        )
    return rates, sync_bytes, dimension


@pytest.mark.benchmark(group="hotpath")
def test_bench_hotpath_compressed_sync():
    # Acceptance bars (ISSUE 5): row-wise batched top-k at K=32, d~1e5 keeps
    # >= 0.75x the uncompressed sync-every-step throughput while the fabric
    # ledger records >= 4x fewer model-sync bytes.
    throughput_bar, bytes_bar = 0.75, 4.0
    grid = [(8, 100_000), (32, 100_000)]
    acceptance = (32, 100_000)
    name, ratio, error_feedback = COMPRESSED_SYNC_SPEC
    print(
        f"\n=== tau={COMPRESSED_SYNC_TAU} sync cadence: error-feedback top-k "
        "vs exact AllReduce (batched) ==="
    )
    print(
        f"{'K':>4} {'d':>8} {'exact steps/s':>14} {'compressed steps/s':>19} "
        f"{'ratio':>7} {'sync B exact':>13} {'sync B comp':>12} {'bytes ratio':>12}"
    )
    rows = []
    measured = {}
    for num_workers, dimension_key in grid:
        rates, sync_bytes, dimension = measure_compressed_sync(num_workers, dimension_key)
        throughput_ratio = rates["compressed"] / rates["exact"]
        bytes_ratio = sync_bytes["exact"] / sync_bytes["compressed"]
        measured[(num_workers, dimension_key)] = (throughput_ratio, bytes_ratio)
        rows.append(
            {
                "K": num_workers,
                "d": dimension,
                "dimension_key": dimension_key,
                "compressor": name,
                "ratio": ratio,
                "error_feedback": error_feedback,
                "tau": COMPRESSED_SYNC_TAU,
                "batch_size": COMPRESSED_SYNC_BATCH,
                "exact_steps_per_sec": round(rates["exact"], 2),
                "compressed_steps_per_sec": round(rates["compressed"], 2),
                "throughput_ratio": round(throughput_ratio, 3),
                "sync_bytes_exact": sync_bytes["exact"],
                "sync_bytes_compressed": sync_bytes["compressed"],
                "sync_bytes_ratio": round(bytes_ratio, 2),
            }
        )
        print(
            f"{num_workers:>4} {dimension:>8} {rates['exact']:>14,.1f} "
            f"{rates['compressed']:>19,.1f} {throughput_ratio:>6.2f}x "
            f"{sync_bytes['exact']:>13,} {sync_bytes['compressed']:>12,} "
            f"{bytes_ratio:>11.1f}x"
        )

    best, bytes_ratio = measured[acceptance]
    attempts = 1
    while STRICT and best < throughput_bar and attempts < 4:
        rates, _, _ = measure_compressed_sync(*acceptance)
        best = max(best, rates["compressed"] / rates["exact"])
        attempts += 1
        print(
            f"  re-measured compressed sync K={acceptance[0]} d~{acceptance[1]}: "
            f"best throughput ratio now {best:.2f}x"
        )
    for row in rows:
        if (row["K"], row["dimension_key"]) == acceptance:
            row["throughput_ratio_best_of_retries"] = round(best, 3)
    emit_bench_section("hotpath", "compressed-sync", rows)
    # Byte accounting is deterministic — no retries, no strict-mode escape.
    assert bytes_ratio >= bytes_bar, (
        f"expected >= {bytes_bar}x fewer sync bytes from {name}(ratio={ratio}), "
        f"ledger shows {bytes_ratio:.1f}x"
    )
    if not STRICT and best < throughput_bar:
        print(
            f"  WARNING: compressed-sync throughput ratio {best:.2f}x < "
            f"{throughput_bar}x (REPRO_BENCH_STRICT=0)"
        )
        return
    assert best >= throughput_bar, (
        f"expected row-wise batched compression to keep at least {throughput_bar}x "
        f"of the uncompressed sync-every-step throughput at K={acceptance[0]}, "
        f"d~{acceptance[1]}; best of {attempts} runs was {best:.2f}x"
    )


@pytest.mark.benchmark(group="hotpath")
def test_bench_hotpath_compressed_sync_trains_like_sequential():
    """The benchmarked compressed batched path must match the sequential engine."""
    config = _compressed_sync_config()
    sequential = build_cluster(4, 10_000, "sequential", BATCHED_MODEL_CONFIGS, compression=config)
    batched = build_cluster(4, 10_000, "batched", BATCHED_MODEL_CONFIGS, compression=config)
    for cluster in (sequential, batched):
        cluster.broadcast_parameters(cluster.workers[0].get_parameters())
    for _ in range(5):
        sequential.step_all(); sequential.synchronize(include_buffers=False)
        batched.step_all(); batched.synchronize(include_buffers=False)
    np.testing.assert_allclose(
        sequential.parameter_matrix, batched.parameter_matrix, rtol=1e-6
    )
    assert sequential.total_bytes == batched.total_bytes


@pytest.mark.benchmark(group="hotpath")
def test_bench_hotpath_batched_matches_sequential():
    """The benchmarked batched engine must train like the sequential engine."""
    sequential = build_cluster(4, 10_000, "sequential", BATCHED_MODEL_CONFIGS)
    batched = build_cluster(4, 10_000, "batched", BATCHED_MODEL_CONFIGS)
    for _ in range(5):
        loss_seq = sequential.step_all()
        loss_bat = batched.step_all()
        np.testing.assert_allclose(loss_seq, loss_bat, rtol=1e-6)
    np.testing.assert_allclose(
        sequential.parameter_matrix, batched.parameter_matrix, rtol=1e-6
    )


# -- the plane-vs-seed regression canary (PR-1 baseline) ------------------------


def run_plane_steps(cluster: SimulatedCluster, reference, scratch, steps: int) -> None:
    """Zero-copy path: in-place update, row-wise drifts, vectorized sync."""
    for _ in range(steps):
        for worker in cluster.workers:
            worker._apply_update(None)
        drifts = cluster.drift_matrix(reference, out=scratch)
        for drift in drifts:
            float(np.dot(drift, drift))
        cluster.synchronize(include_buffers=False)


def seed_gather(arrays) -> np.ndarray:
    return np.concatenate([array.reshape(-1) for array in arrays])


def seed_scatter(arrays, flat) -> None:
    offset = 0
    for array in arrays:
        size = array.size
        array[...] = flat[offset : offset + size].reshape(array.shape)
        offset += size


def run_seed_steps(cluster: SimulatedCluster, optimizers, reference, steps: int) -> None:
    """The seed implementation's data flow: gather → step → scatter → drift."""
    for _ in range(steps):
        for worker, optimizer in zip(cluster.workers, optimizers):
            params = seed_gather(worker.model.parameter_arrays())
            grads = seed_gather(worker.model.gradient_arrays())
            seed_scatter(worker.model.parameter_arrays(), optimizer.step(params, grads))
        for worker in cluster.workers:
            drift = seed_gather(worker.model.parameter_arrays()) - reference
            float(np.dot(drift, drift))
        stacked = np.stack(
            [seed_gather(worker.model.parameter_arrays()) for worker in cluster.workers]
        )
        average = stacked.mean(axis=0)
        for worker in cluster.workers:
            seed_scatter(worker.model.parameter_arrays(), average)


def state_bytes_per_step(num_workers: int, dimension_key: int) -> int:
    """FDA state traffic per step (linear monitor), from the real tracker."""
    cluster = build_cluster(num_workers, dimension_key)
    monitor = make_monitor("linear", cluster.model_dimension, seed=0)
    trainer = FDATrainer(cluster, monitor, threshold=1e12)
    before = cluster.total_bytes
    trainer.run_steps(2)
    return (cluster.total_bytes - before) // 2


def measure_speedup(num_workers: int, dimension_key: int, steps: int = 20, repeats: int = 3):
    """One grid cell: (plane steps/s, seed steps/s) from min-of-``repeats`` timings."""
    plane_cluster = build_cluster(num_workers, dimension_key)
    seed_cluster = build_cluster(num_workers, dimension_key)
    dimension = plane_cluster.model_dimension
    reference = np.zeros(dimension)
    scratch = np.empty((num_workers, dimension))
    optimizers = [SGD(0.01) for _ in range(num_workers)]
    prime_gradients(plane_cluster)
    prime_gradients(seed_cluster)
    run_plane_steps(plane_cluster, reference, scratch, 2)  # warmup
    run_seed_steps(seed_cluster, optimizers, reference, 2)

    plane_time = best_of(
        repeats, lambda: run_plane_steps(plane_cluster, reference, scratch, steps)
    )
    seed_time = best_of(
        repeats, lambda: run_seed_steps(seed_cluster, optimizers, reference, steps)
    )
    return num_workers * steps / plane_time, num_workers * steps / seed_time


@pytest.mark.benchmark(group="hotpath")
def test_bench_hotpath_speedup():
    print("\n=== worker hot path: parameter plane (in-place) vs seed copy path ===")
    print(
        f"{'K':>4} {'d':>8} {'plane steps/s':>14} {'seed steps/s':>13} "
        f"{'speedup':>8} {'state B/step':>13} {'sync bytes':>11}"
    )
    rows = []
    speedups = {}
    for num_workers in (8, 32):
        for dimension_key in (10_000, 100_000):
            plane_rate, seed_rate = measure_speedup(num_workers, dimension_key)
            features, width, depth, classes = MODEL_CONFIGS[dimension_key]
            dimension = (
                features * width + width
                + (depth - 1) * (width * width + width)
                + width * classes + classes
            )
            speedups[(num_workers, dimension_key)] = plane_rate / seed_rate
            state_bytes = state_bytes_per_step(num_workers, dimension_key)
            # Itemsize-accurate AllReduce volume: these clusters run the
            # float64 reference plane, priced at 8 B/element by the default
            # cost model (a float32 cluster would charge exactly half).
            sync_bytes = 8 * dimension * num_workers
            rows.append(
                {
                    "K": num_workers,
                    "d": dimension,
                    "dimension_key": dimension_key,
                    "plane_steps_per_sec": round(plane_rate, 2),
                    "seed_steps_per_sec": round(seed_rate, 2),
                    "speedup": round(plane_rate / seed_rate, 3),
                    "state_bytes_per_step": state_bytes,
                    "sync_bytes": sync_bytes,
                }
            )
            print(
                f"{num_workers:>4} {dimension:>8} {plane_rate:>14,.0f} {seed_rate:>13,.0f} "
                f"{plane_rate / seed_rate:>7.2f}x {state_bytes:>13} {sync_bytes:>11}"
            )

    # Acceptance bar of the parameter-plane refactor: >= 2x at d=1e5.  K=8
    # keeps the working set off the memory-bandwidth ceiling of small CI
    # runners; the K=32 rows are reported as a perf baseline for future PRs.
    # Wall-clock ratios on shared machines are noisy, so a cell that misses
    # the bar is re-measured a few times (best observed ratio counts) before
    # the suite is failed over what may be a transient load spike, and the
    # assertion can be turned into a report-only warning on runners whose
    # timing cannot be trusted at all (REPRO_BENCH_STRICT=0, set by CI).
    attempts_by_key = {}
    for dimension_key in (100_000, 10_000):
        best = speedups[(8, dimension_key)]
        attempts = 1
        while STRICT and best < 2.0 and attempts < 4:
            plane_rate, seed_rate = measure_speedup(8, dimension_key)
            best = max(best, plane_rate / seed_rate)
            attempts += 1
            print(f"  re-measured K=8 d~{dimension_key}: best speedup now {best:.2f}x")
        speedups[(8, dimension_key)] = best
        attempts_by_key[dimension_key] = attempts
        for row in rows:
            if row["K"] == 8 and row["dimension_key"] == dimension_key:
                row["speedup_best_of_retries"] = round(best, 3)
    # Emit after the retries (so the artifact records the ratio the verdict
    # was based on) but before the assertions (so a failing run still leaves
    # its evidence behind).
    emit_bench_section("hotpath", "plane-vs-seed", rows)
    for dimension_key in (100_000, 10_000):
        best = speedups[(8, dimension_key)]
        if not STRICT and best < 2.0:
            print(f"  WARNING: speedup {best:.2f}x < 2x at d~{dimension_key} "
                  "(REPRO_BENCH_STRICT=0, not failing)")
            continue
        assert best >= 2.0, (
            f"expected the in-place parameter plane to be at least 2x the seed "
            f"copy path at d~{dimension_key}, best of "
            f"{attempts_by_key[dimension_key]} runs was {best:.2f}x"
        )


@pytest.mark.benchmark(group="hotpath")
def test_bench_hotpath_trajectories_match():
    """The benchmarked fast path must train identically to the copy path."""
    fast_cluster = build_cluster(4, 10_000)
    slow_cluster = build_cluster(4, 10_000)
    for worker in slow_cluster.workers:
        worker.inplace = False
    for _ in range(5):
        fast_cluster.step_all()
        slow_cluster.step_all()
    np.testing.assert_array_equal(
        fast_cluster.parameter_matrix, slow_cluster.parameter_matrix
    )
