"""Microbenchmark of the worker hot path: parameter plane vs seed copy path.

The parameter-plane refactor eliminated the full-vector re-materializations
the seed implementation paid on every worker step (layer gather → optimizer
copy → layer scatter → drift copy) and turned the cluster collectives into
row-wise matrix operations.  This benchmark drives exactly that plumbing —
one optimizer update, one drift extraction + squared-norm state, and one
model synchronization per worker step (the Θ=0 / BSP hot path), with the
backpropagation compute (identical on both paths, untouched by the refactor)
excluded — for K ∈ {8, 32} workers and d ≈ {1e4, 1e5} parameters.

The copy path replicates the *seed* data flow faithfully: per-array
``np.concatenate`` gathers, a copy-returning ``Optimizer.step``, per-array
scatter loops, a fresh gather for the drift, and a stack-of-copies
synchronization — on the same multi-tensor MLPs (20 parameter arrays, like
the paper's real models).  Reported numbers are hot-path worker steps/sec
(min-of-3 timings) and the per-step communication volume, which is unchanged
by design.  Future PRs: beat the ``inplace`` column.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.fda import FDATrainer
from repro.core.monitor import make_monitor
from repro.data.datasets import Dataset
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.worker import Worker
from repro.nn.architectures import mlp
from repro.optim.sgd import SGD

#: (features, hidden width, hidden depth, classes) per target model dimension.
MODEL_CONFIGS = {10_000: (50, 30, 9, 33), 100_000: (150, 100, 9, 40)}


def build_cluster(num_workers: int, dimension_key: int) -> SimulatedCluster:
    features, width, depth, classes = MODEL_CONFIGS[dimension_key]
    rng = np.random.default_rng(0)
    workers = []
    for worker_id in range(num_workers):
        model = mlp(features, classes, hidden_units=(width,) * depth, seed=1)
        x = rng.normal(size=(16, features))
        y = rng.integers(0, classes, size=16)
        workers.append(
            Worker(
                worker_id,
                model,
                Dataset(x, y, classes),
                SGD(0.01),
                batch_size=2,
                seed=worker_id,
            )
        )
    return SimulatedCluster(workers)


def prime_gradients(cluster: SimulatedCluster) -> None:
    """One real backward pass so the gradient planes hold live values."""
    for worker in cluster.workers:
        worker.model.train_batch(*worker._sampler.sample())


# -- the two implementations under test ---------------------------------------


def run_plane_steps(cluster: SimulatedCluster, reference, scratch, steps: int) -> None:
    """Zero-copy path: in-place update, row-wise drifts, vectorized sync."""
    for _ in range(steps):
        for worker in cluster.workers:
            worker._apply_update(None)
        drifts = cluster.drift_matrix(reference, out=scratch)
        for drift in drifts:
            float(np.dot(drift, drift))
        cluster.synchronize(include_buffers=False)


def seed_gather(arrays) -> np.ndarray:
    return np.concatenate([array.reshape(-1) for array in arrays])


def seed_scatter(arrays, flat) -> None:
    offset = 0
    for array in arrays:
        size = array.size
        array[...] = flat[offset : offset + size].reshape(array.shape)
        offset += size


def run_seed_steps(cluster: SimulatedCluster, optimizers, reference, steps: int) -> None:
    """The seed implementation's data flow: gather → step → scatter → drift."""
    for _ in range(steps):
        for worker, optimizer in zip(cluster.workers, optimizers):
            params = seed_gather(worker.model.parameter_arrays())
            grads = seed_gather(worker.model.gradient_arrays())
            seed_scatter(worker.model.parameter_arrays(), optimizer.step(params, grads))
        for worker in cluster.workers:
            drift = seed_gather(worker.model.parameter_arrays()) - reference
            float(np.dot(drift, drift))
        stacked = np.stack(
            [seed_gather(worker.model.parameter_arrays()) for worker in cluster.workers]
        )
        average = stacked.mean(axis=0)
        for worker in cluster.workers:
            seed_scatter(worker.model.parameter_arrays(), average)


def best_of(repeats: int, fn) -> float:
    """Minimum wall-clock seconds over ``repeats`` invocations of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def state_bytes_per_step(num_workers: int, dimension_key: int) -> int:
    """FDA state traffic per step (linear monitor), from the real tracker."""
    cluster = build_cluster(num_workers, dimension_key)
    monitor = make_monitor("linear", cluster.model_dimension, seed=0)
    trainer = FDATrainer(cluster, monitor, threshold=1e12)
    before = cluster.total_bytes
    trainer.run_steps(2)
    return (cluster.total_bytes - before) // 2


def measure_speedup(num_workers: int, dimension_key: int, steps: int = 20, repeats: int = 3):
    """One grid cell: (plane steps/s, seed steps/s) from min-of-``repeats`` timings."""
    plane_cluster = build_cluster(num_workers, dimension_key)
    seed_cluster = build_cluster(num_workers, dimension_key)
    dimension = plane_cluster.model_dimension
    reference = np.zeros(dimension)
    scratch = np.empty((num_workers, dimension))
    optimizers = [SGD(0.01) for _ in range(num_workers)]
    prime_gradients(plane_cluster)
    prime_gradients(seed_cluster)
    run_plane_steps(plane_cluster, reference, scratch, 2)  # warmup
    run_seed_steps(seed_cluster, optimizers, reference, 2)

    plane_time = best_of(
        repeats, lambda: run_plane_steps(plane_cluster, reference, scratch, steps)
    )
    seed_time = best_of(
        repeats, lambda: run_seed_steps(seed_cluster, optimizers, reference, steps)
    )
    return num_workers * steps / plane_time, num_workers * steps / seed_time


@pytest.mark.benchmark(group="hotpath")
def test_bench_hotpath_speedup():
    print("\n=== worker hot path: parameter plane (in-place) vs seed copy path ===")
    print(
        f"{'K':>4} {'d':>8} {'plane steps/s':>14} {'seed steps/s':>13} "
        f"{'speedup':>8} {'state B/step':>13} {'sync bytes':>11}"
    )
    speedups = {}
    for num_workers in (8, 32):
        for dimension_key in (10_000, 100_000):
            plane_rate, seed_rate = measure_speedup(num_workers, dimension_key)
            features, width, depth, classes = MODEL_CONFIGS[dimension_key]
            dimension = (
                features * width + width
                + (depth - 1) * (width * width + width)
                + width * classes + classes
            )
            speedups[(num_workers, dimension_key)] = plane_rate / seed_rate
            state_bytes = state_bytes_per_step(num_workers, dimension_key)
            sync_bytes = 4 * dimension * num_workers  # float32 AllReduce volume
            print(
                f"{num_workers:>4} {dimension:>8} {plane_rate:>14,.0f} {seed_rate:>13,.0f} "
                f"{plane_rate / seed_rate:>7.2f}x {state_bytes:>13} {sync_bytes:>11}"
            )

    # Acceptance bar of the parameter-plane refactor: >= 2x at d=1e5.  K=8
    # keeps the working set off the memory-bandwidth ceiling of small CI
    # runners; the K=32 rows are reported as a perf baseline for future PRs.
    # Wall-clock ratios on shared machines are noisy, so a cell that misses
    # the bar is re-measured a few times (best observed ratio counts) before
    # the suite is failed over what may be a transient load spike, and the
    # assertion can be turned into a report-only warning on runners whose
    # timing cannot be trusted at all (REPRO_BENCH_STRICT=0, set by CI).
    strict = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"
    for dimension_key in (100_000, 10_000):
        best = speedups[(8, dimension_key)]
        attempts = 1
        while strict and best < 2.0 and attempts < 4:
            plane_rate, seed_rate = measure_speedup(8, dimension_key)
            best = max(best, plane_rate / seed_rate)
            attempts += 1
            print(f"  re-measured K=8 d~{dimension_key}: best speedup now {best:.2f}x")
        if not strict and best < 2.0:
            print(f"  WARNING: speedup {best:.2f}x < 2x at d~{dimension_key} "
                  "(REPRO_BENCH_STRICT=0, not failing)")
            continue
        assert best >= 2.0, (
            f"expected the in-place parameter plane to be at least 2x the seed "
            f"copy path at d~{dimension_key}, best of {attempts} runs was {best:.2f}x"
        )


@pytest.mark.benchmark(group="hotpath")
def test_bench_hotpath_trajectories_match():
    """The benchmarked fast path must train identically to the copy path."""
    fast_cluster = build_cluster(4, 10_000)
    slow_cluster = build_cluster(4, 10_000)
    for worker in slow_cluster.workers:
        worker.inplace = False
    for _ in range(5):
        fast_cluster.step_all()
        slow_cluster.step_all()
    np.testing.assert_array_equal(
        fast_cluster.parameter_matrix, slow_cluster.parameter_matrix
    )
