"""Figure 3 — LeNet-5 on MNIST: communication vs computation across heterogeneity.

The paper's Figure 3 shows KDE plots of (communication, in-parallel steps) for
LinearFDA, SketchFDA, FedAdam and Synchronous under IID, Non-IID label, and
Non-IID 60 % partitioning, all at accuracy target 0.985.  This benchmark
regenerates the same per-strategy cost rows for the three heterogeneity
settings and checks the expected shape: the FDA variants sit far left of
Synchronous on the communication axis while keeping a comparable step count,
and their costs stay roughly unchanged across the heterogeneity settings.
"""

from benchmarks.conftest import (
    assert_fda_communication_advantage,
    print_grouped_results,
    run_spec,
    strategies_by_name,
)
from repro.experiments.kde import log_kde_summary
from repro.experiments.registry import figure3


def _run(quick):
    return run_spec(figure3(quick=quick))


def test_figure3_lenet_mnist_heterogeneity(benchmark, quick):
    grouped = benchmark.pedantic(_run, args=(quick,), rounds=1, iterations=1)
    print_grouped_results("Figure 3: LeNet-5 on MNIST", grouped)

    # Shape 1: FDA saves communication by a large factor in every setting.
    for results in grouped.values():
        assert_fda_communication_advantage(results, factor_vs_sync=5.0)

    # Shape 2: FDA costs are comparable across IID and Non-IID settings.
    iid = strategies_by_name(grouped["iid"])
    for label, results in grouped.items():
        if label == "iid":
            continue
        other = strategies_by_name(results)
        for name in ("LinearFDA", "SketchFDA"):
            if name in iid and name in other and iid[name].communication_bytes > 0:
                ratio = other[name].communication_bytes / iid[name].communication_bytes
                assert ratio < 25.0, (
                    f"{name} under {label} used {ratio:.1f}x the IID communication; "
                    "the paper reports comparable costs"
                )

    # KDE-style density summary (the numeric analogue of the paper's plot).
    all_results = [result for results in grouped.values() for result in results]
    for summary in log_kde_summary(all_results):
        print(
            f"KDE centroid {summary.strategy:<12} log10(comm)={summary.centroid_log_comm:.2f} "
            f"log10(steps)={summary.centroid_log_steps:.2f}"
        )
