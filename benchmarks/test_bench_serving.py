"""Serving-plane benchmark: FDA vs BSP tail latency, and the saturation knee.

The paper's wall-clock argument (Figure 12) says triggered FDA syncs beat
lockstep BSP because synchronization is the expensive, barrier-ful
operation.  The served-system restatement: under identical open-loop load on
an identical fabric, FDA's p99 update latency must not exceed BSP's, because
BSP stalls its ingress queue at every round barrier while FDA synchronizes
only when the variance threshold trips.  Section ``fda-vs-bsp`` sweeps that
claim over a declarative topology x network run table (>= 3 fabric cells).

Section ``saturation`` sweeps the per-worker arrival rate across the
coordinator's service rate at a fixed 0.2 s/update service time: the
aggregate service rate is 5 updates/s, so offered loads below it must keep
p99 flat and bounded while loads beyond it make p99 and queue depth diverge
(the knee an M/D/1-style open loop predicts).

Env knobs (CI smoke leg uses both):

* ``REPRO_BENCH_SMALL=1`` — fewer served updates per cell.
* ``REPRO_BENCH_STRICT=0`` — demote the FDA<=BSP p99 comparison to a
  warning on shared runners; the saturation-shape assertions (monotone p99,
  divergence past the knee) are deterministic virtual-time facts and stay
  hard everywhere.

Emits ``BENCH_serving.json`` (sections ``fda-vs-bsp`` and ``saturation``).
"""

from __future__ import annotations

import os
from dataclasses import replace

import numpy as np

from benchmarks.bench_json import emit_bench_section
from repro.data.synthetic import gaussian_blobs
from repro.experiments.runtable import RunTableSpec
from repro.experiments.setup import WorkloadConfig, make_optimizer
from repro.nn.architectures import mlp
from repro.serving import ServingConfig
from repro.serving.harness import serve_workload

SMALL = os.environ.get("REPRO_BENCH_SMALL", "0") == "1"
STRICT = os.environ.get("REPRO_BENCH_STRICT", "1") != "0"

WORKERS = 4
UPDATES = 150 if SMALL else 400
THETA = 0.05

#: The fabric grid: three cells where synchronization cost differs by
#: topology (star vs ring hop structure) and network (fl vs hpc pricing).
FABRIC_SPEC = RunTableSpec(
    fabrics=(("star", "fl"), ("ring", "fl"), ("star", "hpc")),
    sizes=(WORKERS,),
    repetitions=1,
)

#: Saturation sweep: per-worker rates; aggregate offered load K*rate against
#: the aggregate service rate 1/SERVICE_SECONDS = 5 updates/s.
SERVICE_SECONDS = 0.2
RATE_GRID = [0.25, 0.75, 1.5, 2.5]


def _workload(seed: int = 0) -> WorkloadConfig:
    train = gaussian_blobs(360, feature_dim=8, num_classes=3, seed=7)
    test = gaussian_blobs(120, feature_dim=8, num_classes=3, seed=8)
    return WorkloadConfig(
        name="serving-bench",
        model_factory=lambda: mlp(8, 3, hidden_units=(16,), seed=11),
        train_dataset=train,
        test_dataset=test,
        optimizer_factory=make_optimizer("adam", learning_rate=0.01),
        num_workers=WORKERS,
        batch_size=16,
        seed=seed,
    )


def _serve_cell(workload: WorkloadConfig, serving: ServingConfig) -> dict:
    report = serve_workload(
        workload.with_serving(serving), THETA, UPDATES, variant="linear"
    )
    return report.to_dict()


def test_fda_p99_beats_bsp_per_fabric_cell(benchmark):
    base_serving = ServingConfig(
        arrival="poisson",
        arrival_rate=0.5,
        queue_capacity=256,
        queue_policy="drop",
        staleness_rule="uniform",
        service_seconds=0.05,
        arrival_seed=2026,
    )
    entries = FABRIC_SPEC.workloads(_workload())

    def _grid():
        rows = []
        for entry in entries:
            for protocol in ("fda", "bsp"):
                row = _serve_cell(
                    entry.workload, replace(base_serving, protocol=protocol)
                )
                row["fabric"] = entry.label
                row.update(entry.tags)
                rows.append(row)
        return rows

    rows = benchmark.pedantic(_grid, rounds=1, iterations=1)

    header = (
        f"{'fabric':>14}{'proto':>7}{'p50':>10}{'p95':>10}{'p99':>10}"
        f"{'tput/s':>9}{'syncs':>7}{'bytes':>10}"
    )
    print(f"\n=== FDA vs BSP: {UPDATES} updates, K={WORKERS}, theta={THETA} ===")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['fabric']:>14}{row['protocol']:>7}"
            f"{row['latency_p50']:>10.4f}{row['latency_p95']:>10.4f}"
            f"{row['latency_p99']:>10.4f}{row['throughput']:>9.2f}"
            f"{row['sync_count']:>7}{row['total_bytes']:>10}"
        )
    emit_bench_section("serving", "fda-vs-bsp", rows)

    # Every row must actually have served the full load and report complete
    # percentiles — hard in every mode.
    for row in rows:
        assert row["updates_served"] == UPDATES
        for key in ("latency_p50", "latency_p95", "latency_p99", "throughput"):
            assert np.isfinite(row[key])

    by_fabric = {}
    for row in rows:
        by_fabric.setdefault(row["fabric"], {})[row["protocol"]] = row
    for fabric, cells in by_fabric.items():
        fda_p99 = cells["fda"]["latency_p99"]
        bsp_p99 = cells["bsp"]["latency_p99"]
        message = (
            f"{fabric}: FDA p99 {fda_p99:.4f}s vs BSP p99 {bsp_p99:.4f}s "
            f"(FDA must not be slower at the tail)"
        )
        if not STRICT and fda_p99 > bsp_p99:
            print(f"WARNING (REPRO_BENCH_STRICT=0): {message}")
            continue
        assert fda_p99 <= bsp_p99, message


def test_saturation_knee_as_arrivals_pass_service_rate(benchmark):
    workload = _workload()
    service_rate = 1.0 / SERVICE_SECONDS

    def _sweep():
        rows = []
        for rate in RATE_GRID:
            serving = ServingConfig(
                arrival="poisson",
                arrival_rate=rate,
                staleness_rule="uniform",
                service_seconds=SERVICE_SECONDS,
                arrival_seed=2026,
            )
            # theta=inf isolates pure queueing: no syncs, so the knee is
            # exactly the arrival-rate/service-rate crossover.
            report = serve_workload(
                workload.with_serving(serving), float("inf"), UPDATES, variant="linear"
            )
            row = report.to_dict()
            row["offered_rate"] = WORKERS * rate
            row["service_rate"] = service_rate
            row["utilization"] = WORKERS * rate / service_rate
            rows.append(row)
        return rows

    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    header = (
        f"{'rate/worker':>12}{'offered':>9}{'util':>7}{'p50':>10}{'p99':>10}"
        f"{'depth':>7}{'tput/s':>9}"
    )
    print(
        f"\n=== Saturation sweep: service={SERVICE_SECONDS}s "
        f"(mu={service_rate:.1f}/s aggregate) ==="
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['arrival_rate']:>12.2f}{row['offered_rate']:>9.2f}"
            f"{row['utilization']:>7.2f}{row['latency_p50']:>10.3f}"
            f"{row['latency_p99']:>10.3f}{row['max_queue_depth']:>7}"
            f"{row['throughput']:>9.2f}"
        )
    emit_bench_section("serving", "saturation", rows)

    # The knee is a deterministic virtual-time fact: hard in every mode.
    p99 = [row["latency_p99"] for row in rows]
    assert all(later >= earlier for earlier, later in zip(p99, p99[1:])), (
        f"p99 must be non-decreasing in offered load, got {p99}"
    )
    subcritical = [row for row in rows if row["utilization"] < 0.9]
    supercritical = [row for row in rows if row["utilization"] > 1.1]
    assert subcritical and supercritical, "rate grid must straddle the knee"
    # Past the knee the queue is unstable: backlog grows with the run length,
    # so the most-overloaded cell must diverge by an order of magnitude over
    # every stable cell (milder overloads need longer horizons to pile up
    # that far, so they are only held to the monotonicity check above).
    worst_stable = max(row["latency_p99"] for row in subcritical)
    deepest = max(supercritical, key=lambda row: row["utilization"])
    assert deepest["latency_p99"] > 10 * worst_stable, (
        f"utilization {deepest['utilization']:.2f} p99 "
        f"{deepest['latency_p99']:.3f}s did not diverge past the knee "
        f"(stable worst {worst_stable:.3f}s)"
    )
    assert deepest["max_queue_depth"] > 10 * max(
        r["max_queue_depth"] for r in subcritical
    )
    # Throughput saturates at the service rate: no supercritical cell can
    # clear updates faster than mu.
    for row in supercritical:
        assert row["throughput"] <= service_rate * 1.05
