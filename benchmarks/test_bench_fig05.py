"""Figure 5 — DenseNet121 on CIFAR-10 (IID): communication vs computation.

The paper's Figure 5 compares LinearFDA, SketchFDA, FedAvgM and Synchronous
on DenseNet121/CIFAR-10 with SGD-Nesterov-momentum local optimization.  The
shape to reproduce: FDA reaches the target with a small fraction of the
Synchronous communication while staying in the same computation ballpark.
"""

from benchmarks.conftest import (
    assert_fda_communication_advantage,
    print_grouped_results,
    run_spec,
    strategies_by_name,
)
from repro.experiments.registry import figure5


def _run(quick):
    return run_spec(figure5(quick=quick))


def test_figure5_densenet121_cifar10(benchmark, quick):
    grouped = benchmark.pedantic(_run, args=(quick,), rounds=1, iterations=1)
    print_grouped_results("Figure 5: DenseNet121 on CIFAR-10 (IID)", grouped)

    results = grouped["iid"]
    assert_fda_communication_advantage(results, factor_vs_sync=3.0)

    by_name = strategies_by_name(results)
    # FDA computation is comparable to (not drastically worse than) Synchronous.
    assert by_name["LinearFDA"].parallel_steps <= 5 * max(by_name["Synchronous"].parallel_steps, 1)
    # FedAvgM communicates less than Synchronous but more than FDA (paper shape).
    if "FedAvgM" in by_name:
        assert by_name["FedAvgM"].communication_bytes < by_name["Synchronous"].communication_bytes
        assert by_name["LinearFDA"].communication_bytes < by_name["FedAvgM"].communication_bytes
