"""Tests for the shared virtual-time engine (lockstep + event modes)."""

import numpy as np
import pytest

from repro.core.timeline import ComputeProfile, StragglerProfile, Timeline
from repro.exceptions import ConfigurationError, ExperimentError


class TestConstruction:
    def test_defaults_are_unperturbed(self):
        timeline = Timeline(4)
        assert timeline.now == 0.0
        assert not timeline.perturbed
        assert timeline.sample_participation() is None
        np.testing.assert_allclose(timeline.step_durations, 1.0)

    def test_compute_profile_is_an_alias(self):
        assert ComputeProfile is StragglerProfile

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Timeline(0)
        with pytest.raises(ConfigurationError):
            Timeline(4, dropout_rate=1.0)
        with pytest.raises(ConfigurationError):
            Timeline(4, dropout_rate=-0.1)


class TestLockstepMode:
    def test_advance_round_uses_slowest_worker(self):
        profile = StragglerProfile(straggler_fraction=0.25, straggler_factor=3.0)
        timeline = Timeline(4, profile=profile, seed=0)
        elapsed = timeline.advance_round(10)
        assert elapsed == pytest.approx(10 * timeline.step_durations.max())
        assert timeline.now == pytest.approx(elapsed)
        assert timeline.compute_seconds == pytest.approx(elapsed)

    def test_active_mask_excludes_stragglers_from_the_critical_path(self):
        profile = StragglerProfile(straggler_fraction=0.25, straggler_factor=5.0)
        timeline = Timeline(4, profile=profile, seed=0)
        durations = timeline.step_durations
        fast_only = durations < durations.max()
        elapsed = timeline.advance_round(1, active=fast_only)
        assert elapsed == pytest.approx(1.0)  # base step time, straggler excluded

    def test_zero_steps_is_free(self):
        timeline = Timeline(3)
        assert timeline.advance_round(0) == 0.0
        assert timeline.now == 0.0

    def test_jitter_draws_are_seed_deterministic(self):
        profile = StragglerProfile(jitter=0.2)
        first = Timeline(5, profile=profile, seed=7)
        second = Timeline(5, profile=profile, seed=7)
        assert first.advance_round(20) == pytest.approx(second.advance_round(20))

    def test_jitter_round_is_at_least_the_jitter_free_maximum_on_average(self):
        # max over workers of jittered durations >= a single worker's duration
        # in expectation; just sanity-check it stays positive and finite.
        timeline = Timeline(6, profile=StragglerProfile(jitter=0.5), seed=1)
        elapsed = timeline.advance_round(50)
        assert np.isfinite(elapsed) and elapsed > 0

    def test_negative_steps_rejected(self):
        with pytest.raises(ConfigurationError):
            Timeline(2).advance_round(-1)


class TestDropout:
    def test_mask_always_has_a_participant(self):
        timeline = Timeline(3, seed=0, dropout_rate=0.95)
        for _ in range(50):
            mask = timeline.sample_participation()
            assert mask is not None
            assert mask.any()

    def test_perturbed_flag(self):
        assert Timeline(2, dropout_rate=0.5).perturbed
        assert not Timeline(2).perturbed

    def test_no_dropout_consumes_no_randomness(self):
        profile = StragglerProfile(jitter=0.3)
        polled = Timeline(4, profile=profile, seed=3)
        reference = Timeline(4, profile=profile, seed=3)
        for _ in range(10):
            assert polled.sample_participation() is None
        # Identical subsequent jittered rounds prove no rng stream divergence.
        assert polled.advance_round(5) == pytest.approx(reference.advance_round(5))


class TestEventMode:
    def test_completions_pop_in_time_order(self):
        profile = StragglerProfile(straggler_fraction=0.5, straggler_factor=4.0)
        timeline = Timeline(6, profile=profile, seed=0)
        for worker in range(6):
            timeline.schedule_step(worker, start_time=0.0)
        times = []
        for _ in range(12):
            time, worker = timeline.pop_completion()
            times.append(time)
            timeline.schedule_step(worker)
        assert times == sorted(times)
        assert timeline.now == times[-1]

    def test_pop_without_pending_raises(self):
        with pytest.raises(ExperimentError):
            Timeline(2).pop_completion()

    def test_schedule_validates_worker_id(self):
        with pytest.raises(ConfigurationError):
            Timeline(2).schedule_step(5)

    def test_add_communication_delays_pending_completions(self):
        timeline = Timeline(2)
        timeline.schedule_step(0, start_time=0.0)  # completes at t=1
        timeline.add_communication(2.5)
        assert timeline.now == pytest.approx(2.5)
        assert timeline.comm_seconds == pytest.approx(2.5)
        time, worker = timeline.pop_completion()
        assert worker == 0
        assert time == pytest.approx(3.5)  # 1.0 compute + 2.5 barrier

    def test_add_communication_zero_is_a_noop(self):
        timeline = Timeline(2)
        timeline.schedule_step(0, start_time=0.0)
        timeline.add_communication(0.0)
        assert timeline.now == 0.0
        assert timeline.next_completion_time() == pytest.approx(1.0)

    def test_add_communication_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Timeline(2).add_communication(-1.0)

    def test_advance_to_never_goes_backwards(self):
        timeline = Timeline(2)
        timeline.advance_to(5.0)
        timeline.advance_to(1.0)
        assert timeline.now == 5.0

    def test_duplicate_completion_times_pop_in_worker_order(self):
        # With a uniform profile every worker scheduled at t=0 completes at
        # the same instant; the contract says ties break by ascending worker
        # id regardless of heap insertion order.
        timeline = Timeline(5)
        for worker in (3, 0, 4, 1, 2):
            timeline.schedule_step(worker, start_time=0.0)
        order = [timeline.pop_completion() for _ in range(5)]
        assert [worker for _, worker in order] == [0, 1, 2, 3, 4]
        assert all(time == pytest.approx(1.0) for time, _ in order)

    def test_same_worker_duplicate_times_pop_fifo(self):
        # Two completions of the same worker at the same instant pop in
        # scheduling order (the monotone sequence number, not heap luck).
        timeline = Timeline(2)
        first = timeline.schedule_step(1, start_time=0.0)
        second = timeline.schedule_step(1, start_time=0.0)
        assert first == second
        popped = [timeline.pop_completion() for _ in range(2)]
        assert popped == [(first, 1), (second, 1)]

    def test_delay_pending_preserves_tie_break_order(self):
        timeline = Timeline(4)
        for worker in (2, 0, 3, 1):
            timeline.schedule_step(worker, start_time=0.0)
        timeline.add_communication(3.0)  # barrier delays all pending equally
        order = [timeline.pop_completion()[1] for _ in range(4)]
        assert order == [0, 1, 2, 3]
