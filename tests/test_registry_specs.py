"""Validation of every experiment-registry entry (the figure/table configurations)."""

import pytest

from repro.experiments import registry
from repro.experiments.registry import ExperimentSpec
from repro.experiments.setup import build_cluster


ALL_SPEC_NAMES = sorted(registry.ALL_FIGURES)


@pytest.fixture(scope="module")
def specs():
    """Build every figure spec once (quick mode) for the whole module."""
    return {name: registry.ALL_FIGURES[name](quick=True) for name in ALL_SPEC_NAMES}


class TestFigureSpecs:
    def test_every_figure_has_a_registry_entry(self):
        # Figures 3-11 and 13 are strategy comparisons; Figure 12 has its own builder.
        expected = {f"figure{i}" for i in (3, 4, 5, 6, 7, 8, 9, 10, 11, 13)}
        assert set(ALL_SPEC_NAMES) == expected
        assert callable(registry.figure12)

    @pytest.mark.parametrize("name", ALL_SPEC_NAMES)
    def test_spec_structure(self, specs, name):
        spec = specs[name]
        assert isinstance(spec, ExperimentSpec)
        assert spec.experiment_id == name
        assert spec.title
        assert spec.workloads, f"{name} must define at least one workload"
        assert spec.strategy_factories, f"{name} must define at least one strategy"
        assert 0.0 < spec.run.accuracy_target <= 1.0
        assert spec.run.max_steps >= spec.run.eval_every_steps

    @pytest.mark.parametrize("name", ALL_SPEC_NAMES)
    def test_spec_includes_fda_and_synchronous(self, specs, name):
        spec = specs[name]
        names = set(spec.strategy_factories)
        assert "LinearFDA" in names and "SketchFDA" in names and "Synchronous" in names

    @pytest.mark.parametrize("name", ALL_SPEC_NAMES)
    def test_workloads_are_buildable(self, specs, name):
        spec = specs[name]
        label, workload = next(iter(spec.workloads.items()))
        cluster, test_dataset = build_cluster(workload)
        assert cluster.num_workers == workload.num_workers
        assert len(test_dataset) > 0
        assert cluster.model_dimension > 0

    @pytest.mark.parametrize("name", ALL_SPEC_NAMES)
    def test_strategies_are_constructible(self, specs, name):
        spec = specs[name]
        for factory in spec.strategy_factories.values():
            strategy = factory()
            assert strategy.name

    def test_theta_grids_where_required(self, specs):
        for name in ("figure8", "figure9", "figure10", "figure11", "figure13"):
            assert len(specs[name].fda_thetas) >= 2, f"{name} needs a Theta grid"

    def test_worker_grids_where_required(self, specs):
        for name in ("figure8", "figure9", "figure10", "figure11"):
            assert len(specs[name].worker_counts) >= 2, f"{name} needs a K grid"

    def test_heterogeneity_settings_for_figures_3_and_4(self, specs):
        assert set(specs["figure3"].workloads) == {"iid", "noniid-label", "noniid-60"}
        assert set(specs["figure4"].workloads) == {"iid", "noniid-label0", "noniid-label8"}

    def test_figure7_tracks_training_accuracy(self, specs):
        assert specs["figure7"].run.track_train_accuracy

    def test_figure12_builder(self):
        payload = registry.figure12(quick=True)
        assert len(payload["workloads"]) == 3
        dimensions = [w.model_factory().num_parameters for _, w in payload["workloads"]]
        assert dimensions == sorted(dimensions)
        assert set(payload["paper_slopes"]) == {"fl", "balanced", "hpc"}

    def test_full_mode_grids_are_larger(self):
        quick = registry.figure8(quick=True)
        full = registry.figure8(quick=False)
        assert len(full.fda_thetas) > len(quick.fda_thetas)
        assert full.run.max_steps > quick.run.max_steps


class TestCompressionSweepSpec:
    def test_compression_sweep_structure(self):
        spec = registry.compression_sweep(quick=True)
        assert spec.experiment_id == "compression"
        assert {"LinearFDA", "Synchronous"} <= set(spec.strategy_factories)
        assert "none" in spec.compressions
        assert len(spec.compressions) >= 3

    def test_full_grid_adds_kernels(self):
        quick = registry.compression_sweep(quick=True)
        full = registry.compression_sweep(quick=False)
        assert len(full.compressions) > len(quick.compressions)

    def test_compression_cells_are_buildable(self):
        from repro.experiments.sweep import sweep_compression
        from repro.experiments.run import TrainingRun

        spec = registry.compression_sweep(quick=True)
        workload = next(iter(spec.workloads.values()))
        run = TrainingRun(accuracy_target=0.99, max_steps=8, eval_every_steps=8)
        points = sweep_compression(
            workload,
            run,
            spec.strategy_factories["Synchronous"],
            compressions=spec.compressions,
        )
        labels = [point.compression for point in points]
        assert labels[0] == "none"
        assert all(point.result.parallel_steps >= 8 for point in points)
