"""Tests for the fault-injection plane (``repro.faults``).

Four contracts, each load-bearing for the robustness claims:

1. **Pure observer** — a null :class:`FaultPlan` (and ``faults=None``) leaves
   the training trajectory, byte ledgers, and every RNG stream bit-identical
   to a cluster built without any plan, on both engines and both dtypes.
2. **Determinism** — two runs under the same plan (same seed) produce
   bit-identical fault logs and final parameters; this is what the CI
   ``chaos-smoke`` job re-asserts across processes.
3. **Conservation** — loss-only faults are a pure cost multiplier: the
   trajectory is unchanged and every retransmitted byte charged to the run
   total is accounted for in the per-link log entries.
4. **Checkpoint/restore** — an interrupted-and-resumed run is bit-identical
   to an uninterrupted one, including Dropout RNG streams, Adam step counts,
   the fault log, and the evaluation history.
"""

import hashlib
import json
import os

import numpy as np
import pytest

from helpers.parity import make_cluster
from repro.distributed.engine import BatchedEngine
from repro.exceptions import (
    ConfigurationError,
    ExperimentError,
    TrainingError,
)
from repro.experiments.cache import canonical_value
from repro.experiments.run import TrainingRun
from repro.experiments.setup import WorkloadConfig, build_cluster, make_optimizer
from repro.faults import ClusterCheckpoint, FaultInjector, FaultPlan
from repro.faults.checkpoint import decode_value, encode_value
from repro.nn.architectures import transfer_head
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.synchronous import SynchronousStrategy


def _execute(workload, strategy_factory, max_steps=40, resume_from=None, **run_kwargs):
    """Build a fresh cluster, run a strategy, return ``(cluster, result)``."""
    cluster, test_dataset = build_cluster(workload)
    run = TrainingRun(
        accuracy_target=0.995, max_steps=max_steps, eval_every_steps=20, **run_kwargs
    )
    result = run.execute(
        strategy_factory(), cluster, test_dataset,
        workload_name=workload.name, resume_from=resume_from,
    )
    return cluster, result


def _dropout_workload(blobs_workload):
    """The blobs workload on an RNG-stateful model (Dropout streams)."""
    return WorkloadConfig(
        name="blobs-dropout",
        model_factory=lambda: transfer_head(
            8, num_classes=3, hidden_units=(16,), dropout_rate=0.2, seed=0
        ),
        train_dataset=blobs_workload.train_dataset,
        test_dataset=blobs_workload.test_dataset,
        optimizer_factory=make_optimizer("adam", learning_rate=0.01),
        num_workers=4,
        batch_size=16,
        seed=0,
    )


CHAOS_PLAN = FaultPlan(crash_rate=0.2, loss_rate=0.1, recovery_rounds=3, seed=7)


class TestFaultPlan:
    def test_default_plan_is_null(self):
        assert FaultPlan().is_null
        assert FaultPlan().describe() == "none"

    def test_any_nonzero_rate_is_not_null(self):
        assert not FaultPlan(crash_rate=0.1).is_null
        assert not FaultPlan(loss_rate=0.1).is_null
        assert not FaultPlan(straggler_spike_rate=0.1).is_null
        assert not FaultPlan(corruption_rate=0.1).is_null

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_rate": 1.0},
            {"crash_rate": -0.1},
            {"loss_rate": 1.0},
            {"recovery_rounds": 0.5},
            {"max_retries": -1},
            {"backoff_base_seconds": -0.1},
            {"straggler_spike_factor": 0.5},
            {"corruption_scale": -1.0},
        ],
    )
    def test_invalid_plans_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPlan(**kwargs)

    def test_describe_names_active_categories(self):
        label = FaultPlan(crash_rate=0.1, loss_rate=0.05).describe()
        assert "crash=0.1" in label and "loss=0.05" in label

    def test_plan_participates_in_cache_keys(self):
        # Frozen dataclass -> canonical_value sees every field, so two
        # different plans can never collide in the sweep run store.
        a = canonical_value(FaultPlan(crash_rate=0.1))
        b = canonical_value(FaultPlan(crash_rate=0.2))
        assert a != b
        assert a["__class__"] == "FaultPlan"

    def test_injector_rejects_null_plan(self):
        with pytest.raises(ValueError):
            FaultInjector(FaultPlan(), num_workers=4)


class TestPureObserver:
    """A null plan (or no plan) must not perturb anything, anywhere."""

    @pytest.mark.parametrize("execution", ["sequential", "batched"])
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_null_plan_is_bit_identical(self, blobs_workload, execution, dtype):
        base = blobs_workload.with_execution(execution).with_dtype(dtype)
        cluster_a, result_a = _execute(base, lambda: FDAStrategy(threshold=0.5))
        cluster_b, result_b = _execute(
            base.with_faults(FaultPlan()), lambda: FDAStrategy(threshold=0.5)
        )
        assert cluster_b.faults is None  # null plan installs nothing
        np.testing.assert_array_equal(
            cluster_a.parameter_matrix, cluster_b.parameter_matrix
        )
        assert result_a.communication_bytes == result_b.communication_bytes
        assert cluster_a.fabric.bytes_by_link == cluster_b.fabric.bytes_by_link
        assert result_a.history.entries == result_b.history.entries
        assert result_b.faults == "none"
        assert result_b.fault_log is None

    def test_faulted_training_rng_matches_fault_free(self, blobs_workload):
        # Fault streams are private: the *training* randomness (batch
        # sampling order) of a faulted run equals the fault-free run's.
        cluster_a, _ = _execute(blobs_workload, SynchronousStrategy, max_steps=20)
        cluster_b, _ = _execute(
            blobs_workload.with_faults(FaultPlan(loss_rate=0.3, seed=9)),
            SynchronousStrategy,
            max_steps=20,
        )
        for worker_a, worker_b in zip(cluster_a.workers, cluster_b.workers):
            assert (
                worker_a._sampler._rng.bit_generator.state
                == worker_b._sampler._rng.bit_generator.state
            )


class TestChaosDeterminism:
    """Same plan + same seed => identical faults; the CI chaos-smoke contract."""

    def test_chaos_smoke_same_seed_runs_are_identical(self, blobs_workload):
        workload = blobs_workload.with_execution("batched").with_faults(CHAOS_PLAN)
        cluster_a, result_a = _execute(workload, lambda: FDAStrategy(threshold=0.5))
        cluster_b, result_b = _execute(workload, lambda: FDAStrategy(threshold=0.5))
        assert result_a.fault_log == result_b.fault_log
        assert result_a.fault_log["crashes"]  # the plan actually injected
        np.testing.assert_array_equal(
            cluster_a.parameter_matrix, cluster_b.parameter_matrix
        )
        assert result_a.communication_bytes == result_b.communication_bytes
        assert result_a.history.entries == result_b.history.entries
        # The CI chaos-smoke job runs this test in two separate interpreter
        # invocations and byte-compares the digests, extending the in-process
        # determinism assertion above across process lifetimes.
        digest_path = os.environ.get("REPRO_CHAOS_DIGEST")
        if digest_path:
            with open(digest_path, "w", encoding="utf-8") as handle:
                json.dump(
                    {
                        "fault_log": result_a.fault_log,
                        "parameters_sha256": hashlib.sha256(
                            np.ascontiguousarray(cluster_a.parameter_matrix).tobytes()
                        ).hexdigest(),
                        "communication_bytes": result_a.communication_bytes,
                        "history": result_a.history.entries,
                    },
                    handle,
                    indent=2,
                    sort_keys=True,
                )

    def test_different_fault_seeds_diverge(self, blobs_workload):
        plan_b = FaultPlan(crash_rate=0.2, loss_rate=0.1, recovery_rounds=3, seed=8)
        _, result_a = _execute(
            blobs_workload.with_faults(CHAOS_PLAN), lambda: FDAStrategy(threshold=0.5)
        )
        _, result_b = _execute(
            blobs_workload.with_faults(plan_b), lambda: FDAStrategy(threshold=0.5)
        )
        assert result_a.fault_log != result_b.fault_log


class TestLossyLinks:
    def test_loss_only_faults_conserve_bytes(self, blobs_workload):
        """Retry bytes are a pure surcharge: trajectory unchanged, every
        extra byte in the run total appears in the per-link log entries."""
        cluster_a, result_a = _execute(blobs_workload, SynchronousStrategy)
        plan = FaultPlan(loss_rate=0.1, seed=5)
        cluster_b, result_b = _execute(
            blobs_workload.with_faults(plan), SynchronousStrategy
        )
        np.testing.assert_array_equal(
            cluster_a.parameter_matrix, cluster_b.parameter_matrix
        )
        extra = result_b.communication_bytes - result_a.communication_bytes
        per_link = sum(
            entry["bytes"] for entry in result_b.fault_log["retransmissions"].values()
        )
        assert extra == per_link
        assert extra == result_b.fault_log["retransmitted_bytes"]
        assert extra > 0  # 10% loss over a 40-step BSP run must retry

    def test_retransmitted_bytes_land_on_links(self, blobs_workload):
        plan = FaultPlan(loss_rate=0.1, seed=5)
        cluster_a, _ = _execute(blobs_workload, SynchronousStrategy, max_steps=20)
        cluster_b, result_b = _execute(
            blobs_workload.with_faults(plan), SynchronousStrategy, max_steps=20
        )
        for link, entry in result_b.fault_log["retransmissions"].items():
            src, dst = (int(end) for end in link.split("->"))
            delta = cluster_b.fabric.bytes_by_link[(src, dst)] - cluster_a.fabric.bytes_by_link[(src, dst)]
            assert delta == entry["bytes"]

    def test_backoff_adds_virtual_seconds(self, blobs_workload):
        _, result_a = _execute(blobs_workload, SynchronousStrategy, max_steps=20)
        plan = FaultPlan(loss_rate=0.2, seed=5)
        _, result_b = _execute(
            blobs_workload.with_faults(plan), SynchronousStrategy, max_steps=20
        )
        backoff = result_b.fault_log["total_backoff_seconds"]
        assert backoff > 0.0
        assert result_b.comm_seconds == pytest.approx(result_a.comm_seconds + backoff)

    def test_retry_cap_bounds_the_surcharge(self):
        plan = FaultPlan(loss_rate=0.5, max_retries=2, seed=1)
        injector = FaultInjector(plan, num_workers=4)
        for _ in range(200):
            retries, backoff = injector.sample_link_retries()
            assert 0 <= retries <= 2
            assert backoff <= 2 * plan.backoff_cap_seconds


class TestChurn:
    def test_crashes_freeze_rows_and_rejoins_pay_download(self, blobs_workload):
        plan = FaultPlan(crash_rate=0.25, recovery_rounds=2, seed=3)
        cluster, result = _execute(
            blobs_workload.with_faults(plan), SynchronousStrategy
        )
        log = result.fault_log
        assert log["crashes"] and log["rejoins"]
        # Every rejoin paid a real model download, priced by the fabric.
        for event in log["rejoins"]:
            assert event["recovery_bytes"] > 0
        assert result.faults.startswith("crash=0.25")
        # The timeline's churn ledger mirrors the log.
        kinds = [kind for _, kind, _ in cluster.timeline.churn_events]
        assert kinds.count("crash") == len(log["crashes"])
        assert kinds.count("rejoin") == len(log["rejoins"])

    def test_dead_rows_are_frozen_by_collectives(self, blobs_workload):
        # A vanishingly small crash rate keeps churn active without ever
        # drawing a crash, so the hand-killed worker is the only dead one.
        cluster, _ = build_cluster(
            blobs_workload.with_faults(FaultPlan(crash_rate=1e-12, seed=3))
        )
        cluster.faults.alive[1] = False
        cluster.faults._recovery_round[1] = 10**6  # far beyond this test
        frozen = np.array(cluster.parameter_matrix[1])
        before = np.array(cluster.parameter_matrix)
        cluster.step_all()
        cluster.synchronize()
        np.testing.assert_array_equal(cluster.parameter_matrix[1], frozen)
        # Survivors moved and averaged over themselves only.
        alive_rows = cluster.parameter_matrix[[0, 2, 3]]
        assert not np.array_equal(alive_rows, before[[0, 2, 3]])
        np.testing.assert_array_equal(alive_rows[0], alive_rows[1])

    def test_injector_never_kills_the_whole_cluster(self):
        plan = FaultPlan(crash_rate=0.99, recovery_rounds=50.0, seed=0)
        injector = FaultInjector(plan, num_workers=4)
        for round_index in range(100):
            injector.advance_round(now=float(round_index))
            assert injector.alive.any()

    def test_churn_stream_alignment_is_liveness_independent(self):
        # The injector draws a fixed-size vector every round, so two
        # injectors whose liveness histories differ (different recovery
        # horizons) still see the same crash draws round-for-round.
        plan_a = FaultPlan(crash_rate=0.3, recovery_rounds=1.0, seed=4)
        plan_b = FaultPlan(crash_rate=0.3, recovery_rounds=30.0, seed=4)
        injector_a = FaultInjector(plan_a, num_workers=4)
        injector_b = FaultInjector(plan_b, num_workers=4)
        crashes_a, crashes_b = [], []
        for round_index in range(50):
            crashed_a, _ = injector_a.advance_round(float(round_index))
            crashed_b, _ = injector_b.advance_round(float(round_index))
            crashes_a.extend(crashed_a)
            crashes_b.extend(crashed_b)
        # Same stream, but b's longer outages mask some of its candidates
        # (dead workers cannot crash again), so a's crash set contains b's
        # pattern restricted to rounds where the workers were up; at minimum
        # the first crash must coincide exactly.
        assert crashes_a[0] == crashes_b[0]

    def test_fda_substitutes_stale_states_for_dead_workers(self, blobs_workload):
        plan = FaultPlan(crash_rate=0.3, recovery_rounds=4, seed=11)
        _, result = _execute(
            blobs_workload.with_faults(plan), lambda: FDAStrategy(threshold=0.5)
        )
        assert result.fault_log["crashes"]
        # The monitor kept estimating through churn: the run still evaluated
        # and synchronized without error.
        assert result.parallel_steps == 40

    def test_straggler_spikes_stretch_the_clock(self, blobs_workload):
        from repro.core.timeline import StragglerProfile

        plan = FaultPlan(straggler_spike_rate=0.5, straggler_spike_factor=3.0, seed=2)
        workload = blobs_workload.with_timeline(compute_profile=StragglerProfile())
        _, result_a = _execute(workload, SynchronousStrategy, max_steps=20)
        _, result_b = _execute(
            workload.with_faults(plan), SynchronousStrategy, max_steps=20
        )
        spikes = result_b.fault_log["straggler_spikes"]
        assert spikes
        extra = sum(event["extra_seconds"] for event in spikes)
        assert result_b.virtual_seconds == pytest.approx(
            result_a.virtual_seconds + extra
        )

    def test_corruption_perturbs_but_run_completes(self, blobs_workload):
        plan = FaultPlan(corruption_rate=0.2, corruption_scale=0.01, seed=6)
        _, result = _execute(
            blobs_workload.with_faults(plan), SynchronousStrategy, max_steps=20
        )
        assert result.fault_log["corrupted_payloads"] > 0
        assert np.isfinite(result.final_accuracy)

    def test_faults_refuse_to_combine_with_compression(self, blobs_workload):
        workload = blobs_workload.with_compression("topk").with_faults(
            FaultPlan(crash_rate=0.1)
        )
        with pytest.raises(ConfigurationError, match="compression"):
            build_cluster(workload)


class TestClusterCheckpoint:
    def test_encode_decode_round_trip_is_bit_exact(self, rng):
        for dtype in (np.float64, np.float32):
            array = rng.normal(size=(5, 7)).astype(dtype)
            restored = decode_value(encode_value({"nested": [array]}))["nested"][0]
            assert restored.dtype == array.dtype
            np.testing.assert_array_equal(restored, array)

    @pytest.mark.parametrize("execution", ["sequential", "batched"])
    def test_interrupted_run_resumes_bit_exactly(
        self, blobs_workload, execution, tmp_path
    ):
        workload = (
            _dropout_workload(blobs_workload)
            .with_execution(execution)
            .with_faults(CHAOS_PLAN)
        )
        factory = lambda: FDAStrategy(threshold=0.5)

        cluster_ref, result_ref = _execute(workload, factory, max_steps=80)

        # Interrupt: checkpoint every 20 steps, stop at 40.
        ckpt = tmp_path / "ckpt.json"
        _execute(
            workload, factory, max_steps=40,
            checkpoint_every=20, checkpoint_path=ckpt,
        )
        # Resume into a *fresh* cluster/strategy and continue to 80.
        cluster_res, result_res = _execute(
            workload, factory, max_steps=80, resume_from=ckpt
        )

        np.testing.assert_array_equal(
            cluster_ref.parameter_matrix, cluster_res.parameter_matrix
        )
        assert result_ref.history.entries == result_res.history.entries
        assert result_ref.fault_log == result_res.fault_log
        assert result_ref.communication_bytes == result_res.communication_bytes
        for worker_ref, worker_res in zip(cluster_ref.workers, cluster_res.workers):
            assert worker_ref.optimizer.step_count == worker_res.optimizer.step_count
            # Dropout streams advanced identically through the restore.
            for layer_ref, layer_res in zip(
                worker_ref.model.layers, worker_res.model.layers
            ):
                rng_ref = getattr(layer_ref, "_rng", None)
                if isinstance(rng_ref, np.random.Generator):
                    assert (
                        rng_ref.bit_generator.state
                        == layer_res._rng.bit_generator.state
                    )

    def test_restore_validates_the_target_cluster(self, blobs_workload):
        cluster, _ = build_cluster(blobs_workload)
        checkpoint = ClusterCheckpoint.capture(cluster)
        other, _ = build_cluster(blobs_workload.with_workers(3))
        with pytest.raises(ExperimentError, match="workers"):
            checkpoint.restore(other)

    def test_restore_rejects_dtype_mismatch(self, blobs_workload):
        cluster, _ = build_cluster(blobs_workload)
        checkpoint = ClusterCheckpoint.capture(cluster)
        other, _ = build_cluster(blobs_workload.with_dtype("float32"))
        with pytest.raises(ExperimentError, match="dtype"):
            checkpoint.restore(other)

    def test_save_is_atomic_and_loadable(self, blobs_workload, tmp_path):
        cluster, _ = build_cluster(blobs_workload)
        cluster.step_all()
        path = tmp_path / "snap.json"
        ClusterCheckpoint.capture(cluster).save(path)
        assert path.exists()
        assert not path.with_name(path.name + ".tmp").exists()
        reloaded = ClusterCheckpoint.load(path)
        np.testing.assert_array_equal(
            reloaded.payload["parameters"], cluster.parameter_matrix
        )

    def test_checkpoint_spec_is_cache_key_invisible(self):
        # Snapshot cadence is an observer: it must not change run keys.
        plain = TrainingRun(max_steps=40).spec()
        snapshotting = TrainingRun(
            max_steps=40, checkpoint_every=10, checkpoint_path="x.json"
        ).spec()
        assert plain == snapshotting


class TestDivergenceReporting:
    """Satellite bugfix: divergence raises atomically and names ALL workers."""

    @pytest.mark.parametrize("execution", ["sequential", "batched"])
    def test_all_diverged_workers_are_named(self, execution):
        from repro.data.synthetic import gaussian_blobs
        from repro.distributed.cluster import SimulatedCluster
        from repro.distributed.worker import Worker
        from repro.nn.architectures import mlp
        from repro.optim.sgd import SGD

        # Identical data, model, optimizer, and sampler seed per worker:
        # every replica walks the same trajectory and diverges on the same
        # round, so the aggregated error must name each of them.
        data = gaussian_blobs(40, feature_dim=6, num_classes=3, seed=0)
        workers = [
            Worker(
                worker_id,
                mlp(6, 3, hidden_units=(8,), seed=0),
                data,
                SGD(1e12),
                batch_size=8,
                seed=0,
            )
            for worker_id in range(3)
        ]
        cluster = SimulatedCluster(workers, execution=execution)
        with pytest.raises(TrainingError) as excinfo:
            for _ in range(50):
                cluster.step_all()
        message = str(excinfo.value)
        named = [f"worker {worker_id}" in message for worker_id in range(3)]
        assert all(named), message

    def test_batched_rollback_leaves_buffers_untouched(self):
        from helpers.parity import bn_factory

        cluster = make_cluster(
            "batched",
            model_factory=bn_factory,
            sample_shape=(8, 8, 1),
            num_classes=4,
            num_workers=2,
        )
        assert isinstance(cluster._engine, BatchedEngine)
        cluster.step_all()  # one healthy round populates BatchNorm stats
        # Poison one replica: its next forward pass yields a non-finite loss.
        cluster.parameter_matrix[0, :] = np.nan
        params_before = np.array(cluster.parameter_matrix)
        buffers_before = np.array(cluster.buffer_matrix)
        steps_before = [worker.steps_performed for worker in cluster.workers]
        with pytest.raises(TrainingError, match="worker 0"):
            cluster.step_all()
        # The failing round is atomic: parameters, buffers (BatchNorm running
        # stats), and step counts are exactly the pre-round state — the
        # healthy worker 1 was rolled back too.
        np.testing.assert_array_equal(cluster.parameter_matrix, params_before)
        np.testing.assert_array_equal(cluster.buffer_matrix, buffers_before)
        assert [worker.steps_performed for worker in cluster.workers] == steps_before


class TestResultPersistence:
    def test_fault_log_survives_the_results_file(self, blobs_workload, tmp_path):
        from repro.experiments.persistence import load_results, save_results

        _, result = _execute(
            blobs_workload.with_faults(CHAOS_PLAN),
            lambda: FDAStrategy(threshold=0.5),
            max_steps=20,
        )
        path = save_results([result], tmp_path / "results.json")
        loaded = load_results(path)[0]
        assert loaded.faults == result.faults
        assert loaded.fault_log == result.fault_log
