"""Property tests for the communication fabric: topologies, charges, timing.

The central conservation property: for every topology, the bytes charged for
one model synchronization (an AllReduce of the full parameter vector) equal
the sum of the per-link volumes and are never below the information-theoretic
minimum — at least ``K − 1`` workers must transmit their vector at least once,
i.e. ``(K − 1) · n · bytes_per_element``.  The ring must reproduce the
existing :data:`RING_COST_MODEL` volume, and the star must reproduce the
paper's naive accounting bit-for-bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.comm import BYTES_PER_ELEMENT, NAIVE_COST_MODEL, RING_COST_MODEL
from repro.distributed.network import FL_NETWORK, HPC_NETWORK
from repro.distributed.topology import (
    Fabric,
    GossipTopology,
    HierarchicalTopology,
    NAMED_TOPOLOGIES,
    RingTopology,
    StarTopology,
    Topology,
    get_topology,
)
from repro.exceptions import ConfigurationError

ALL_TOPOLOGIES = sorted(NAMED_TOPOLOGIES)

#: The information-theoretic floor for one exact AllReduce: all but one worker
#: must move their vector at least once.
def info_min_bytes(num_elements: int, num_workers: int) -> int:
    return (num_workers - 1) * num_elements * BYTES_PER_ELEMENT


@st.composite
def allreduce_cases(draw):
    num_elements = draw(st.integers(min_value=1, max_value=200_000))
    num_workers = draw(st.integers(min_value=2, max_value=24))
    return num_elements, num_workers


class TestConservation:
    @pytest.mark.parametrize("name", ALL_TOPOLOGIES)
    @settings(max_examples=40, deadline=None)
    @given(case=allreduce_cases())
    def test_allreduce_bytes_equal_link_sum_and_respect_info_minimum(self, name, case):
        num_elements, num_workers = case
        topology = get_topology(name)
        fabric = Fabric(topology=topology)
        charge = fabric.allreduce(num_elements, num_workers, "model-sync")
        link_elements = topology.allreduce_link_elements(num_elements, num_workers)
        link_bytes = sum(link_elements.values()) * BYTES_PER_ELEMENT
        # Total equals the sum over links (up to integer rounding of the total).
        assert charge.num_bytes == pytest.approx(link_bytes, abs=1.0)
        # ... and the same bytes landed on the fabric's per-link ledger.
        assert sum(fabric.bytes_by_link.values()) == pytest.approx(charge.num_bytes, abs=len(link_elements))
        # Information-theoretic minimum.
        assert charge.num_bytes >= info_min_bytes(num_elements, num_workers)

    @settings(max_examples=40, deadline=None)
    @given(case=allreduce_cases())
    def test_ring_matches_the_ring_cost_model_volume(self, case):
        num_elements, num_workers = case
        fabric = Fabric(topology=RingTopology())
        charge = fabric.allreduce(num_elements, num_workers, "model-sync")
        assert charge.num_bytes == RING_COST_MODEL.allreduce_bytes(num_elements, num_workers)

    @settings(max_examples=40, deadline=None)
    @given(case=allreduce_cases())
    def test_star_matches_the_naive_cost_model_bit_for_bit(self, case):
        num_elements, num_workers = case
        fabric = Fabric(topology=StarTopology())
        charge = fabric.allreduce(num_elements, num_workers, "model-sync")
        assert charge.num_bytes == NAIVE_COST_MODEL.allreduce_bytes(num_elements, num_workers)
        # The star's link loads (the worker uplinks) sum to the same total.
        loads = StarTopology().allreduce_link_elements(num_elements, num_workers)
        assert sum(loads.values()) * BYTES_PER_ELEMENT == charge.num_bytes

    @pytest.mark.parametrize("name", ALL_TOPOLOGIES)
    @settings(max_examples=20, deadline=None)
    @given(case=allreduce_cases())
    def test_broadcast_bytes_equal_link_sum(self, name, case):
        num_elements, num_workers = case
        topology = get_topology(name)
        fabric = Fabric(topology=topology)
        charge = fabric.broadcast(num_elements, num_workers, "model-sync")
        link_bytes = sum(
            topology.broadcast_link_elements(num_elements, num_workers).values()
        ) * BYTES_PER_ELEMENT
        assert charge.num_bytes == pytest.approx(link_bytes, abs=1.0)
        # Reaching K - 1 receivers needs at least K - 1 transmissions.
        assert charge.num_bytes >= info_min_bytes(num_elements, num_workers)

    @pytest.mark.parametrize("name", ALL_TOPOLOGIES)
    def test_degenerate_cases_are_free(self, name):
        topology = get_topology(name)
        fabric = Fabric(topology=topology)
        assert fabric.allreduce(0, 8, "x").num_bytes == 0
        assert fabric.allreduce(100, 1, "x").num_bytes == 0
        assert fabric.broadcast(100, 1, "x").num_bytes == 0


class TestTopologyStructure:
    @pytest.mark.parametrize("name", ALL_TOPOLOGIES)
    def test_links_cover_all_loaded_links(self, name):
        topology = get_topology(name)
        links = set(topology.links(9))
        for link in topology.allreduce_link_elements(64, 9):
            assert link in links
        for link in topology.broadcast_link_elements(64, 9):
            assert link in links

    def test_get_topology_lookup(self):
        assert isinstance(get_topology("star"), StarTopology)
        assert isinstance(get_topology("ring"), RingTopology)
        assert isinstance(get_topology("hierarchical"), HierarchicalTopology)
        assert isinstance(get_topology("gossip"), GossipTopology)
        ring = RingTopology()
        assert get_topology(ring) is ring
        with pytest.raises(ConfigurationError):
            get_topology("torus")

    def test_hierarchical_group_size_validation(self):
        with pytest.raises(ConfigurationError):
            HierarchicalTopology(group_size=1)

    def test_gossip_validation(self):
        with pytest.raises(ConfigurationError):
            GossipTopology(degree=0)
        with pytest.raises(ConfigurationError):
            GossipTopology(rounds=0)

    def test_only_star_uses_paper_accounting(self):
        for name in ALL_TOPOLOGIES:
            assert get_topology(name).paper_accounting == (name == "star")

    @pytest.mark.parametrize("name", ALL_TOPOLOGIES)
    @pytest.mark.parametrize("num_workers", [2, 5, 9])
    def test_upload_paths_use_real_links(self, name, num_workers):
        topology = get_topology(name)
        links = set(topology.links(num_workers))
        for worker in range(num_workers):
            path = topology.upload_path(worker, num_workers)
            for link in path:
                assert link in links, f"{name}: upload link {link} not in topology"
            # The path must actually arrive at the coordinator.
            if path:
                from repro.distributed.topology import SERVER

                destination = path[-1][1]
                assert destination in (SERVER, 0)
                for first, second in zip(path, path[1:]):
                    assert first[1] == second[0]

    def test_ring_upload_takes_the_short_way_round(self):
        ring = RingTopology()
        # Worker 2 of 8 goes backward (2 hops), worker 6 forward (2 hops).
        assert ring.upload_path(2, 8) == [(2, 1), (1, 0)]
        assert ring.upload_path(6, 8) == [(6, 7), (7, 0)]
        assert ring.upload_path(0, 8) == []  # the coordinator itself
        assert len(ring.upload_path(4, 8)) == 4  # worst case: K/2 hops


class TestFabricTiming:
    def test_no_network_means_no_virtual_seconds(self):
        fabric = Fabric(topology=StarTopology())
        charge = fabric.allreduce(10_000, 8, "model-sync")
        assert charge.seconds == 0.0
        assert fabric.comm_seconds == 0.0

    @pytest.mark.parametrize("name", ALL_TOPOLOGIES)
    def test_fl_is_slower_than_hpc(self, name):
        slow = Fabric(topology=get_topology(name), network=FL_NETWORK)
        fast = Fabric(topology=get_topology(name), network=HPC_NETWORK)
        assert (
            slow.allreduce(100_000, 8, "x").seconds
            > fast.allreduce(100_000, 8, "x").seconds
        )

    def test_ring_pays_more_latency_rounds_than_star(self):
        # With a latency-dominated network the ring's 2(K-1) sequential hops
        # must cost more time than the star's 2.
        star = Fabric(topology=StarTopology(), network=FL_NETWORK)
        ring = Fabric(topology=RingTopology(), network=FL_NETWORK)
        assert ring.allreduce(10, 16, "x").seconds > star.allreduce(10, 16, "x").seconds

    def test_seconds_accumulate_by_category(self):
        fabric = Fabric(topology=StarTopology(), network=FL_NETWORK)
        fabric.allreduce(1000, 4, "model-sync")
        fabric.allreduce(10, 4, "fda-state")
        assert fabric.seconds_by_category["model-sync"] > 0
        assert fabric.seconds_by_category["fda-state"] > 0
        assert fabric.comm_seconds == pytest.approx(
            sum(fabric.seconds_by_category.values())
        )

    def test_upload_charges_one_hop_on_the_star(self):
        fabric = Fabric(topology=StarTopology())
        charge = fabric.upload(7, 5, "fda-state", worker_id=3)
        assert charge.num_bytes == 7 * BYTES_PER_ELEMENT
        assert fabric.tracker.operations_for("fda-state") == 1

    def test_upload_charges_per_hop_on_the_hierarchy(self):
        fabric = Fabric(topology=HierarchicalTopology(group_size=2))
        # Worker 3 is a group member: member -> head -> root, two hops.
        charge = fabric.upload(7, 6, "fda-state", worker_id=3)
        assert charge.num_bytes == 2 * 7 * BYTES_PER_ELEMENT
        # Worker 2 is its group's head: one hop to the root.
        head_charge = fabric.upload(7, 6, "fda-state", worker_id=2)
        assert head_charge.num_bytes == 7 * BYTES_PER_ELEMENT

    def test_snapshot_shape(self):
        fabric = Fabric(topology=RingTopology(), network=FL_NETWORK)
        fabric.allreduce(100, 4, "model-sync")
        snapshot = fabric.snapshot()
        assert snapshot["topology"] == "ring"
        assert snapshot["network"] == "fl"
        assert snapshot["comm_seconds"] > 0
        assert snapshot["total_bytes"] == fabric.tracker.total_bytes
        assert snapshot["bytes_by_link"]


class TestValidation:
    def test_negative_elements_rejected(self):
        from repro.exceptions import CommunicationError

        fabric = Fabric()
        with pytest.raises(CommunicationError):
            fabric.allreduce(-1, 4, "x")
        with pytest.raises(CommunicationError):
            fabric.broadcast(-1, 4, "x")
        with pytest.raises(CommunicationError):
            fabric.upload(-1, 4, "x")

    def test_topology_validate_rejects_nonpositive_workers(self):
        with pytest.raises(ConfigurationError):
            StarTopology().validate(0)
