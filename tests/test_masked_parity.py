"""Property-based masked-execution parity (ISSUE-4 satellite).

Hypothesis drives the masked batched engine with *arbitrary* per-round
participation masks (including empty, full, and single-worker rounds) and
randomized initial conditions, and with randomized FDA thresholds θ on
dropout timelines.  The contract under test:

* masked BatchedEngine trajectories match the SequentialEngine **bit-exactly
  for SGD** (value-exact: ``rtol=0, atol=0``) and to ``rtol=1e-6`` for Adam;
* byte/ledger accounting — totals, per-category bytes, sync decisions,
  per-worker step counts — is **exactly** equal for every configuration.

The harness (cluster pairs, drivers, assertions) lives in
``tests/helpers/parity.py``.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers.parity import run_fda_parity, run_masked_step_parity
from repro.optim.adam import Adam
from repro.optim.sgd import SGD

NUM_WORKERS = 5

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: A sequence of per-round masks over NUM_WORKERS workers; empty and full
#: rounds are legal (an all-False round is a no-op on both engines).
mask_sequences = st.lists(
    st.lists(st.booleans(), min_size=NUM_WORKERS, max_size=NUM_WORKERS),
    min_size=1,
    max_size=6,
)


@SETTINGS
@given(masks=mask_sequences, data_seed=st.integers(0, 2**16))
def test_masked_sgd_steps_are_value_exact(masks, data_seed):
    run_masked_step_parity(
        [np.array(mask) for mask in masks],
        exact=True,
        num_workers=NUM_WORKERS,
        data_seed=data_seed,
        optimizer_factory=lambda worker_id: SGD(
            0.05, momentum=0.9, nesterov=True, weight_decay=1e-3
        ),
    )


@SETTINGS
@given(masks=mask_sequences, data_seed=st.integers(0, 2**16))
def test_masked_adam_steps_match_within_rtol(masks, data_seed):
    run_masked_step_parity(
        [np.array(mask) for mask in masks],
        num_workers=NUM_WORKERS,
        data_seed=data_seed,
        optimizer_factory=lambda worker_id: Adam(0.01),
    )


@SETTINGS
@given(
    threshold=st.floats(min_value=0.01, max_value=20.0),
    dropout_rate=st.floats(min_value=0.05, max_value=0.8),
    timeline_seed=st.integers(0, 2**16),
)
def test_masked_fda_runs_are_value_exact_for_sgd(threshold, dropout_rate, timeline_seed):
    """Random θ × random participation stream: trajectories value-exact,
    sync decisions and byte ledgers exactly equal."""
    run_fda_parity(
        threshold=threshold,
        steps=12,
        num_workers=NUM_WORKERS,
        dropout_rate=dropout_rate,
        timeline_seed=timeline_seed,
        optimizer_factory=lambda worker_id: SGD(0.05, momentum=0.9),
        exact=True,
    )
