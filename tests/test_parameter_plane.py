"""Tests for the contiguous parameter plane and the cluster parameter matrix."""

import numpy as np
import pytest

from repro.data.datasets import Dataset
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.worker import Worker
from repro.exceptions import ShapeError
from repro.nn.architectures import lenet5, mlp
from repro.nn.layers import BatchNorm, Dense, Dropout
from repro.nn.model import Sequential
from repro.optim.sgd import SGD


def tiny_model(seed=0):
    return mlp(4, 3, hidden_units=(6,), seed=seed, name="tiny")


class TestModelViews:
    def test_parameters_view_is_zero_copy(self):
        model = tiny_model()
        view = model.parameters_view()
        assert view is model.parameters_view()  # stable object, no re-materialization
        assert view.flags.c_contiguous and view.dtype == np.float64
        np.testing.assert_array_equal(view, model.get_parameters())

    def test_layer_arrays_are_views_into_the_plane(self):
        model = tiny_model()
        view = model.parameters_view()
        for array in model.parameter_arrays():
            assert np.shares_memory(array, view)
        grads = model.gradients_view()
        for array in model.gradient_arrays():
            assert np.shares_memory(array, grads)

    def test_view_stays_valid_across_set_parameters(self):
        model = tiny_model()
        view = model.parameters_view()
        replacement = np.linspace(0.0, 1.0, model.num_parameters)
        model.set_parameters(replacement)
        np.testing.assert_array_equal(view, replacement)  # same storage, new values

    def test_mutating_the_view_mutates_the_layers(self):
        model = tiny_model()
        model.parameters_view()[...] = 2.5
        np.testing.assert_array_equal(model.layers[0].weight, 2.5)

    def test_flat_layout_matches_layer_order(self):
        model = Sequential([Dense(4, activation="relu"), BatchNorm(), Dense(2)]).build((3,))
        expected = np.concatenate([a.reshape(-1) for a in model.parameter_arrays()])
        np.testing.assert_array_equal(model.parameters_view(), expected)
        expected_buffers = np.concatenate([a.reshape(-1) for a in model.buffer_arrays()])
        np.testing.assert_array_equal(model.buffers_view(), expected_buffers)

    def test_gradients_flow_into_the_plane(self):
        model = tiny_model()
        rng = np.random.default_rng(0)
        model.train_batch(rng.normal(size=(8, 4)), np.zeros(8, dtype=int))
        assert np.any(model.gradients_view() != 0.0)
        np.testing.assert_array_equal(model.gradients_view(), model.get_gradients())

    def test_conv_architecture_gets_a_plane_too(self):
        model = lenet5(input_shape=(8, 8, 1), num_classes=3, seed=0)
        view = model.parameters_view()
        assert view.size == model.num_parameters
        for array in model.parameter_arrays():
            assert np.shares_memory(array, view)


class TestRebinding:
    def test_rebind_preserves_values_and_repoints_layers(self):
        model = tiny_model()
        before = model.get_parameters()
        storage = np.zeros(model.num_parameters)
        model.rebind_parameter_storage(storage)
        np.testing.assert_array_equal(storage, before)
        assert model.parameters_view() is storage
        for array in model.parameter_arrays():
            assert np.shares_memory(array, storage)

    def test_rebind_rejects_bad_storage(self):
        model = tiny_model()
        with pytest.raises(ShapeError):
            model.rebind_parameter_storage(np.zeros(model.num_parameters + 1))
        with pytest.raises(ShapeError):
            model.rebind_parameter_storage(np.zeros(model.num_parameters, dtype=np.float32))

    def test_training_after_rebind_updates_external_storage(self):
        model = tiny_model()
        storage = np.empty(model.num_parameters)
        model.rebind_parameter_storage(storage)
        before = storage.copy()
        rng = np.random.default_rng(1)
        model.train_batch(rng.normal(size=(8, 4)), np.zeros(8, dtype=int))
        optimizer = SGD(0.1)
        optimizer.step_inplace(model.parameters_view(), model.gradients_view())
        assert not np.array_equal(storage, before)


class TestStructuralClone:
    def test_clone_copies_parameters_and_buffers(self):
        model = Sequential(
            [Dense(4, activation="relu"), BatchNorm(), Dropout(0.2, seed=5), Dense(2)]
        ).build((3,), seed=2)
        model.set_buffers(np.arange(model.num_buffers, dtype=np.float64))
        clone = model.clone()
        np.testing.assert_array_equal(clone.get_parameters(), model.get_parameters())
        np.testing.assert_array_equal(clone.get_buffers(), model.get_buffers())

    def test_clone_owns_independent_storage(self):
        model = tiny_model()
        clone = model.clone()
        assert not np.shares_memory(clone.parameters_view(), model.parameters_view())
        clone.parameters_view()[...] = 0.0
        assert np.any(model.parameters_view() != 0.0)

    def test_clone_does_not_carry_activation_caches(self):
        model = tiny_model()
        rng = np.random.default_rng(0)
        model.train_batch(rng.normal(size=(8, 4)), np.zeros(8, dtype=int))
        clone = model.clone()
        assert clone.layers[0]._cache_x is None

    def test_clone_forward_matches_original(self):
        model = lenet5(input_shape=(8, 8, 1), num_classes=3, seed=0)
        clone = model.clone()
        x = np.random.default_rng(2).normal(size=(4, 8, 8, 1))
        np.testing.assert_array_equal(model.predict(x), clone.predict(x))


class TestClusterParameterMatrix:
    def make_cluster(self, num_workers=3):
        rng = np.random.default_rng(0)
        workers = []
        for worker_id in range(num_workers):
            x = rng.normal(size=(20, 4))
            y = rng.integers(0, 3, size=20)
            workers.append(
                Worker(worker_id, tiny_model(seed=worker_id), Dataset(x, y, 3), SGD(0.05),
                       batch_size=5, seed=worker_id)
            )
        return SimulatedCluster(workers)

    def test_rows_alias_worker_models(self):
        cluster = self.make_cluster()
        matrix = cluster.parameter_matrix
        assert matrix.shape == (3, cluster.model_dimension)
        for row, worker in zip(matrix, cluster.workers):
            assert worker.parameters_view() is not None
            assert np.shares_memory(row, worker.parameters_view())
            np.testing.assert_array_equal(row, worker.get_parameters())

    def test_broadcast_writes_every_row(self):
        cluster = self.make_cluster()
        flat = np.linspace(-1.0, 1.0, cluster.model_dimension)
        cluster.broadcast_parameters(flat)
        for worker in cluster.workers:
            np.testing.assert_array_equal(worker.get_parameters(), flat)

    def test_broadcast_rejects_wrong_shape(self):
        cluster = self.make_cluster()
        with pytest.raises(ShapeError):
            cluster.broadcast_parameters(np.zeros(cluster.model_dimension + 1))

    def test_local_steps_update_the_matrix_rows(self):
        cluster = self.make_cluster()
        before = cluster.parameter_matrix.copy()
        cluster.step_all()
        assert not np.array_equal(cluster.parameter_matrix, before)

    def test_drift_matrix_matches_per_worker_drifts(self):
        cluster = self.make_cluster()
        cluster.step_all()
        reference = np.zeros(cluster.model_dimension)
        drifts = cluster.drift_matrix(reference)
        for row, worker in zip(drifts, cluster.workers):
            np.testing.assert_array_equal(row, worker.drift_from(reference))
        with pytest.raises(ShapeError):
            cluster.drift_matrix(np.zeros(cluster.model_dimension + 2))

    def test_synchronize_equalizes_rows(self):
        cluster = self.make_cluster()
        cluster.step_all()
        average = cluster.synchronize()
        np.testing.assert_array_equal(cluster.parameter_matrix, np.broadcast_to(
            average, cluster.parameter_matrix.shape))
        assert cluster.model_variance() == pytest.approx(0.0, abs=1e-18)
