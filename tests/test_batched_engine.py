"""Batched-vs-sequential execution parity, per strategy.

The batched engine must be an *execution* optimization only: for every
protocol, a run on ``execution="batched"`` must reproduce the sequential
run's training trajectory and its communication ledger.  Floating-point
trajectories are compared with ``rtol=1e-6`` (documented tolerance: batched
GEMMs may legally re-associate reductions; in practice per-worker slices run
the same BLAS kernels and the trajectories come out bit-identical on common
platforms).  Ledgers — byte counts per category, synchronization decisions,
step counts — are compared exactly: protocol decisions may not drift.
"""

import numpy as np
import pytest

from repro.core.async_fda import AsynchronousFDATrainer
from repro.core.fda import FDATrainer
from repro.core.monitor import make_monitor
from repro.core.timeline import StragglerProfile
from repro.data.datasets import Dataset
from repro.data.loaders import BatchSampler, StackedSampler
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.engine import BatchedEngine, SequentialEngine
from repro.distributed.worker import Worker
from repro.exceptions import ConfigurationError
from repro.nn.architectures import lenet5, mlp, transfer_head
from repro.nn.layers import (
    Activation,
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    GlobalAvgPool2D,
)
from repro.nn.model import Sequential
from repro.optim.adam import Adam
from repro.optim.sgd import SGD
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.local_sgd import LocalSGDStrategy
from repro.strategies.synchronous import SynchronousStrategy

#: Documented trajectory tolerance (see module docstring and ISSUE 3).
RTOL = 1e-6


def mlp_factory():
    return mlp(6, 3, hidden_units=(10, 8), seed=11)


def lenet_factory():
    return lenet5(input_shape=(8, 8, 1), num_classes=4, seed=2)


def bn_factory():
    model = Sequential(
        [
            Conv2D(4, kernel_size=3, padding="same", activation=None, name="conv"),
            BatchNorm(name="bn"),
            Activation("relu", name="act"),
            AvgPool2D(2, name="pool"),
            GlobalAvgPool2D(name="gap"),
            Dense(4, activation=None, name="logits"),
        ],
        name="bn-net",
    )
    model.build((8, 8, 1), seed=3)
    return model


def make_cluster(
    execution,
    model_factory=mlp_factory,
    sample_shape=(6,),
    num_classes=3,
    num_workers=8,
    optimizer_factory=lambda: Adam(0.01),
    **cluster_kwargs,
):
    rng = np.random.default_rng(7)
    workers = []
    for worker_id in range(num_workers):
        x = rng.normal(size=(40,) + sample_shape)
        y = rng.integers(0, num_classes, size=40)
        workers.append(
            Worker(
                worker_id,
                model_factory(),
                Dataset(x, y, num_classes),
                optimizer_factory(),
                batch_size=8,
                seed=worker_id,
            )
        )
    return SimulatedCluster(workers, execution=execution, **cluster_kwargs)


def assert_ledgers_equal(cluster_a, cluster_b):
    """Byte accounting must be *exactly* equal between the engines."""
    assert cluster_a.total_bytes == cluster_b.total_bytes
    for category in ("model-sync", "fda-state", "other"):
        assert cluster_a.tracker.bytes_for(category) == cluster_b.tracker.bytes_for(
            category
        )
    assert cluster_a.synchronization_count == cluster_b.synchronization_count
    assert [w.steps_performed for w in cluster_a.workers] == [
        w.steps_performed for w in cluster_b.workers
    ]


class TestFdaParity:
    @pytest.mark.parametrize("threshold", [0.05, 0.5, 5.0])
    @pytest.mark.parametrize("variant", ["linear", "sketch"])
    def test_fda_trajectory_and_ledger_match(self, variant, threshold):
        steps = 40
        results = {}
        for execution in ("sequential", "batched"):
            cluster = make_cluster(execution)
            monitor = make_monitor(variant, cluster.model_dimension, seed=3)
            trainer = FDATrainer(cluster, monitor, threshold=threshold)
            results[execution] = (trainer, trainer.run_steps(steps))
        seq_trainer, seq_steps = results["sequential"]
        bat_trainer, bat_steps = results["batched"]

        np.testing.assert_allclose(
            [r.mean_loss for r in seq_steps],
            [r.mean_loss for r in bat_steps],
            rtol=RTOL,
        )
        np.testing.assert_allclose(
            [r.variance_estimate for r in seq_steps],
            [r.variance_estimate for r in bat_steps],
            rtol=RTOL,
            atol=1e-9,
        )
        np.testing.assert_allclose(
            seq_trainer.cluster.parameter_matrix,
            bat_trainer.cluster.parameter_matrix,
            rtol=RTOL,
        )
        # Protocol decisions and the communication ledger are exact.
        assert [r.synchronized for r in seq_steps] == [r.synchronized for r in bat_steps]
        assert [r.communication_bytes for r in seq_steps] == [
            r.communication_bytes for r in bat_steps
        ]
        assert_ledgers_equal(seq_trainer.cluster, bat_trainer.cluster)

    def test_acceptance_fda_k8_loss_trajectory_and_ledger(self):
        """The ISSUE-3 acceptance cell: K=8 FDA, rtol=1e-6 losses, exact bytes."""
        runs = {}
        for execution in ("sequential", "batched"):
            cluster = make_cluster(execution, num_workers=8)
            trainer = FDATrainer(
                cluster, make_monitor("linear", cluster.model_dimension, seed=3), 0.5
            )
            runs[execution] = (cluster, trainer.run_steps(60))
        seq_cluster, seq_steps = runs["sequential"]
        bat_cluster, bat_steps = runs["batched"]
        np.testing.assert_allclose(
            [r.mean_loss for r in seq_steps],
            [r.mean_loss for r in bat_steps],
            rtol=RTOL,
        )
        assert_ledgers_equal(seq_cluster, bat_cluster)


class TestStrategyParity:
    @pytest.mark.parametrize(
        "strategy_factory",
        [
            SynchronousStrategy,
            lambda: LocalSGDStrategy(tau=4),  # FedAvg-style local SGD
            lambda: FDAStrategy(threshold=0.5, variant="linear"),
        ],
        ids=["bsp", "local-sgd", "fda-strategy"],
    )
    def test_round_trajectories_match(self, strategy_factory):
        rounds = 12
        outcomes = {}
        for execution in ("sequential", "batched"):
            cluster = make_cluster(execution)
            strategy = strategy_factory().attach(cluster)
            outcomes[execution] = (cluster, [strategy.run_round() for _ in range(rounds)])
        seq_cluster, seq_rounds = outcomes["sequential"]
        bat_cluster, bat_rounds = outcomes["batched"]
        np.testing.assert_allclose(
            [r.mean_loss for r in seq_rounds],
            [r.mean_loss for r in bat_rounds],
            rtol=RTOL,
        )
        assert [r.synchronized for r in seq_rounds] == [
            r.synchronized for r in bat_rounds
        ]
        assert [r.communication_bytes for r in seq_rounds] == [
            r.communication_bytes for r in bat_rounds
        ]
        np.testing.assert_allclose(
            seq_cluster.parameter_matrix, bat_cluster.parameter_matrix, rtol=RTOL
        )
        assert_ledgers_equal(seq_cluster, bat_cluster)

    @pytest.mark.parametrize("model_factory,shape,classes", [
        (lenet_factory, (8, 8, 1), 4),
        (bn_factory, (8, 8, 1), 4),
    ], ids=["lenet-conv", "batchnorm-net"])
    def test_conv_and_batchnorm_models_match(self, model_factory, shape, classes):
        outcomes = {}
        for execution in ("sequential", "batched"):
            cluster = make_cluster(
                execution,
                model_factory=model_factory,
                sample_shape=shape,
                num_classes=classes,
                num_workers=4,
                optimizer_factory=lambda: SGD(0.05, momentum=0.9, nesterov=True),
            )
            losses = [cluster.step_all() for _ in range(10)]
            cluster.synchronize()
            outcomes[execution] = (cluster, losses)
        seq_cluster, seq_losses = outcomes["sequential"]
        bat_cluster, bat_losses = outcomes["batched"]
        np.testing.assert_allclose(seq_losses, bat_losses, rtol=RTOL)
        np.testing.assert_allclose(
            seq_cluster.parameter_matrix, bat_cluster.parameter_matrix, rtol=RTOL
        )
        np.testing.assert_allclose(
            seq_cluster.buffer_matrix, bat_cluster.buffer_matrix, rtol=RTOL
        )
        assert_ledgers_equal(seq_cluster, bat_cluster)


class TestAsyncParity:
    def test_async_runs_are_engine_independent(self):
        """Event-driven completions take the per-worker path on both engines,
        so asynchronous trajectories must be *exactly* equal."""
        outcomes = {}
        for execution in ("sequential", "batched"):
            cluster = make_cluster(execution)
            trainer = AsynchronousFDATrainer(
                cluster,
                make_monitor("linear", cluster.model_dimension, seed=3),
                threshold=0.5,
                profile=StragglerProfile(straggler_fraction=0.25, straggler_factor=3.0),
                seed=5,
            )
            events = trainer.run_events(80)
            outcomes[execution] = (cluster, trainer, events)
        seq_cluster, seq_trainer, seq_events = outcomes["sequential"]
        bat_cluster, bat_trainer, bat_events = outcomes["batched"]
        assert [(e.worker_id, e.step_index, e.synchronized) for e in seq_events] == [
            (e.worker_id, e.step_index, e.synchronized) for e in bat_events
        ]
        np.testing.assert_array_equal(
            seq_cluster.parameter_matrix, bat_cluster.parameter_matrix
        )
        assert seq_trainer.synchronization_count == bat_trainer.synchronization_count
        assert_ledgers_equal(seq_cluster, bat_cluster)


class TestStackedSampler:
    def test_reproduces_per_worker_rng_streams(self):
        rng = np.random.default_rng(0)
        datasets = [
            Dataset(rng.normal(size=(30, 5)), rng.integers(0, 3, size=30), 3)
            for _ in range(4)
        ]
        stacked = StackedSampler.for_datasets(datasets, batch_size=6, seeds=range(4))
        solo = [BatchSampler(ds, 6, seed=seed) for seed, ds in enumerate(datasets)]
        for _ in range(5):
            x, y = stacked.sample()
            assert x.shape == (4, 6, 5) and y.shape == (4, 6)
            for worker, sampler in enumerate(solo):
                expected_x, expected_y = sampler.sample()
                np.testing.assert_array_equal(x[worker], expected_x)
                np.testing.assert_array_equal(y[worker], expected_y)

    def test_rejects_mismatched_workers(self):
        from repro.exceptions import DataError

        rng = np.random.default_rng(0)
        a = Dataset(rng.normal(size=(10, 5)), rng.integers(0, 2, size=10), 2)
        b = Dataset(rng.normal(size=(10, 4)), rng.integers(0, 2, size=10), 2)
        with pytest.raises(DataError):
            StackedSampler([BatchSampler(a, 4, seed=0), BatchSampler(b, 4, seed=1)])
        with pytest.raises(DataError):
            StackedSampler([BatchSampler(a, 4, seed=0), BatchSampler(a, 5, seed=1)])
        with pytest.raises(DataError):
            StackedSampler([])


class TestEngineSelection:
    def test_cluster_exposes_engine_and_execution(self):
        sequential = make_cluster("sequential", num_workers=2)
        assert sequential.execution == "sequential"
        assert isinstance(sequential.engine, SequentialEngine)
        assert sequential.gradient_matrix is None

        batched = make_cluster("batched", num_workers=2)
        assert batched.execution == "batched"
        assert isinstance(batched.engine, BatchedEngine)
        assert batched.gradient_matrix.shape == (2, batched.model_dimension)
        # The gradient matrix aliases the workers' gradient planes.
        batched.step_all()
        np.testing.assert_array_equal(
            batched.gradient_matrix[1], batched.workers[1].model.gradients_view()
        )

    def test_unknown_execution_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cluster("vectorized")

    def test_unsupported_layers_rejected_with_clear_message(self):
        # transfer_head contains Dropout, whose private RNG stream has no
        # batched equivalent.
        with pytest.raises(ConfigurationError, match="[Dd]ropout"):
            make_cluster(
                "batched",
                model_factory=lambda: transfer_head(6, num_classes=3, seed=0),
                sample_shape=(6,),
            )

    def test_incompatible_optimizers_rejected(self):
        rng = np.random.default_rng(0)
        workers = []
        for worker_id in range(2):
            x = rng.normal(size=(20, 6))
            y = rng.integers(0, 3, size=20)
            optimizer = Adam(0.01) if worker_id == 0 else Adam(0.02)
            workers.append(
                Worker(worker_id, mlp_factory(), Dataset(x, y, 3), optimizer, batch_size=4)
            )
        with pytest.raises(ConfigurationError, match="identically configured"):
            SimulatedCluster(workers, execution="batched")

    def test_structurally_different_models_rejected(self):
        # Same parameter count, different activation: the batched kernels are
        # built from worker 0's layers, so this must be rejected, not
        # silently trained with the wrong activation.
        rng = np.random.default_rng(0)
        workers = []
        for worker_id, activation in enumerate(("relu", "tanh")):
            x = rng.normal(size=(20, 6))
            y = rng.integers(0, 3, size=20)
            model = mlp(6, 3, hidden_units=(10, 8), activation=activation, seed=11)
            workers.append(
                Worker(worker_id, model, Dataset(x, y, 3), Adam(0.01), batch_size=4)
            )
        with pytest.raises(ConfigurationError, match="architecture"):
            SimulatedCluster(workers, execution="batched")

    def test_pre_stepped_optimizers_rejected(self):
        # A pre-stepped optimizer's (d,) moments would be silently re-zeroed
        # by the first (K, d) update while its step count kept counting.
        rng = np.random.default_rng(0)
        workers = []
        for worker_id in range(2):
            x = rng.normal(size=(20, 6))
            y = rng.integers(0, 3, size=20)
            workers.append(
                Worker(worker_id, mlp_factory(), Dataset(x, y, 3), Adam(0.01), batch_size=4)
            )
        for worker in workers:
            worker.local_step()
        with pytest.raises(ConfigurationError, match="fresh optimizers"):
            SimulatedCluster(workers, execution="batched")

    def test_dropout_timeline_rejected(self):
        from repro.core.timeline import Timeline

        with pytest.raises(ConfigurationError, match="participation"):
            make_cluster(
                "batched",
                num_workers=4,
                timeline=Timeline(4, dropout_rate=0.5, seed=0),
            )

    def test_mixed_drive_modes_rejected(self):
        # Per-worker first, then lockstep:
        cluster = make_cluster("batched", num_workers=2)
        cluster.engine.step_worker(0)
        with pytest.raises(ConfigurationError, match="desynchronize"):
            cluster.step_all()
        # ... and the reverse order — lockstep first, then per-worker steps
        # or epochs — is equally corrupting and equally rejected.
        cluster = make_cluster("batched", num_workers=2)
        cluster.step_all()
        with pytest.raises(ConfigurationError, match="desynchronize"):
            cluster.engine.step_worker(0)
        with pytest.raises(ConfigurationError, match="desynchronize"):
            cluster.epoch_all()

    def test_direct_worker_driving_detected_by_step_all(self):
        # Strategies like FedProx/SCAFFOLD step workers *directly*
        # (worker.local_epoch), bypassing the engine's entry points; step_all
        # must still detect the per-worker optimizer state and refuse.
        cluster = make_cluster("batched", num_workers=2)
        cluster.workers[1].local_step()
        with pytest.raises(ConfigurationError, match="driven"):
            cluster.step_all()
        # ... including when only worker 0 (whose optimizer doubles as the
        # engine's shared cluster optimizer) was driven.
        cluster = make_cluster("batched", num_workers=2)
        cluster.workers[0].local_epoch()
        with pytest.raises(ConfigurationError, match="driven"):
            cluster.step_all()


class TestWorkloadExecutionField:
    def test_build_cluster_threads_execution_through(self, blobs_workload):
        from repro.experiments.setup import build_cluster

        cluster, _ = build_cluster(blobs_workload.with_execution("batched"))
        assert cluster.execution == "batched"
        cluster2, _ = build_cluster(blobs_workload)
        assert cluster2.execution == "sequential"

    def test_invalid_execution_rejected(self, blobs_workload):
        with pytest.raises(ConfigurationError):
            blobs_workload.with_execution("turbo")

    def test_run_result_records_and_persists_execution(self, tmp_path, blobs_workload):
        from repro.experiments.persistence import load_results, save_results
        from repro.experiments.run import TrainingRun
        from repro.experiments.setup import build_cluster

        cluster, test_dataset = build_cluster(blobs_workload.with_execution("batched"))
        run = TrainingRun(accuracy_target=0.99, max_steps=8, eval_every_steps=4)
        result = run.execute(
            SynchronousStrategy(), cluster, test_dataset, workload_name="blobs"
        )
        assert result.execution == "batched"
        path = tmp_path / "results.json"
        save_results([result], path)
        (loaded,) = load_results(path)
        assert loaded.execution == "batched"
        # Files written before the field existed still load (default applies).
        import json

        document = json.loads(path.read_text())
        del document["results"][0]["execution"]
        path.write_text(json.dumps(document))
        (legacy,) = load_results(path)
        assert legacy.execution == "sequential"
