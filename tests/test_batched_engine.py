"""Batched-vs-sequential execution parity, per strategy — on the harness.

The scenario grid itself (clusters, drivers, assertions) lives in
``tests/helpers/parity.py``; this file parametrizes over it and additionally
pins down the engine's guard surface.  The whole grid — partial
participation, ``Dropout`` models, heterogeneous optimizer hyper-parameters,
per-worker driving — runs vectorized: none of it falls back to the
sequential engine.

SGD scenarios are held to *value-exact* parity (``rtol=0, atol=0``); Adam
scenarios use the documented ``rtol=1e-6`` (numpy's vectorized pow is kept
off the bias-correction path, so in practice Adam comes out bit-identical
too, but only SGD's exactness is contractual).  Ledgers — bytes per
category, sync decisions, step counts — are always exact.
"""

import numpy as np
import pytest

from helpers.parity import (
    EXECUTIONS,
    MODELS,
    RTOL,
    TIMELINES,
    assert_cluster_states_match,
    assert_ledgers_equal,
    make_cluster,
    make_cluster_pair,
    mlp_factory,
    run_fda_parity,
    run_strategy_parity,
)
from repro.core.async_fda import AsynchronousFDATrainer
from repro.core.monitor import make_monitor
from repro.core.timeline import StragglerProfile, Timeline
from repro.data.datasets import Dataset
from repro.data.loaders import BatchSampler, StackedSampler
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.engine import BatchedEngine, SequentialEngine
from repro.distributed.worker import Worker
from repro.exceptions import ConfigurationError
from repro.nn.architectures import densenet_mini, mlp
from repro.nn.losses import MeanSquaredError
from repro.optim.adam import Adam
from repro.optim.base import Optimizer, StackedOptimizer
from repro.optim.sgd import SGD
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.local_sgd import LocalSGDStrategy
from repro.strategies.synchronous import SynchronousStrategy


class TestFdaParity:
    @pytest.mark.parametrize("timeline", sorted(TIMELINES))
    @pytest.mark.parametrize("threshold", [0.05, 0.5, 5.0])
    @pytest.mark.parametrize("variant", ["linear", "sketch"])
    def test_fda_trajectory_and_ledger_match(self, variant, threshold, timeline):
        run_fda_parity(
            variant=variant,
            threshold=threshold,
            steps=40,
            dropout_rate=TIMELINES[timeline],
        )

    def test_acceptance_fda_k8_loss_trajectory_and_ledger(self):
        """The ISSUE-3 acceptance cell: K=8 FDA, rtol=1e-6 losses, exact bytes."""
        run_fda_parity(variant="linear", threshold=0.5, steps=60, num_workers=8)

    def test_masked_fda_is_value_exact_for_sgd(self):
        """The ISSUE-4 acceptance cell: dropout timeline, SGD, exact parity."""
        run_fda_parity(
            variant="linear",
            threshold=0.5,
            steps=50,
            dropout_rate=0.3,
            optimizer_factory=lambda worker_id: SGD(0.05, momentum=0.9, nesterov=True),
            exact=True,
        )


class TestStrategyParity:
    STRATEGIES = {
        "bsp": SynchronousStrategy,
        "local-sgd": lambda: LocalSGDStrategy(tau=4),
        "fda-strategy": lambda: FDAStrategy(threshold=0.5, variant="linear"),
    }

    @pytest.mark.parametrize("timeline", sorted(TIMELINES))
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_round_trajectories_match(self, strategy, timeline):
        run_strategy_parity(
            self.STRATEGIES[strategy],
            rounds=12,
            dropout_rate=TIMELINES[timeline],
        )

    @pytest.mark.parametrize("model", ["lenet-conv", "batchnorm-net"])
    def test_conv_and_batchnorm_models_match(self, model):
        factory, shape, classes = MODELS[model]
        outcomes = {}
        for execution in EXECUTIONS:
            cluster = make_cluster(
                execution,
                model_factory=factory,
                sample_shape=shape,
                num_classes=classes,
                num_workers=4,
                optimizer_factory=lambda worker_id: SGD(0.05, momentum=0.9, nesterov=True),
            )
            losses = [cluster.step_all() for _ in range(10)]
            cluster.synchronize()
            outcomes[execution] = (cluster, losses)
        seq_cluster, seq_losses = outcomes["sequential"]
        bat_cluster, bat_losses = outcomes["batched"]
        np.testing.assert_allclose(seq_losses, bat_losses, rtol=RTOL)
        assert_cluster_states_match(seq_cluster, bat_cluster)
        assert_ledgers_equal(seq_cluster, bat_cluster)

    def test_dropout_model_runs_batched_and_matches_exactly(self):
        """Dropout layers no longer force the sequential fallback: the batched
        kernel replays each worker's private mask stream bit-for-bit."""
        factory, shape, classes = MODELS["dropout-head"]
        run_strategy_parity(
            self.STRATEGIES["bsp"],
            rounds=10,
            model_factory=factory,
            sample_shape=shape,
            num_classes=classes,
            optimizer_factory=lambda worker_id: SGD(0.05),
            exact=True,
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("model", sorted(MODELS))
    @pytest.mark.parametrize("timeline", sorted(TIMELINES))
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_full_scenario_grid(self, strategy, timeline, model):
        """The exhaustive strategy × timeline × model cross product."""
        factory, shape, classes = MODELS[model]
        run_strategy_parity(
            self.STRATEGIES[strategy],
            rounds=8,
            model_factory=factory,
            sample_shape=shape,
            num_classes=classes,
            num_workers=4,
            dropout_rate=TIMELINES[timeline],
        )


class TestHeterogeneousWorkers:
    def test_heterogeneous_sgd_hyperparameters_match_exactly(self):
        """Per-worker lr/momentum/weight-decay become (K, 1) columns; the
        masked stacked update must equal each worker's own update bit-for-bit."""
        run_fda_parity(
            threshold=0.5,
            steps=40,
            dropout_rate=0.3,
            optimizer_factory=lambda worker_id: SGD(
                0.01 * (worker_id + 1),
                momentum=0.1 * worker_id if worker_id else 0.0,
                weight_decay=1e-4 * worker_id,
            ),
            exact=True,
        )

    def test_heterogeneous_adam_matches(self):
        run_fda_parity(
            threshold=0.5,
            steps=40,
            dropout_rate=0.3,
            optimizer_factory=lambda worker_id: Adam(
                0.001 * (worker_id + 1), beta1=0.85 + 0.02 * worker_id
            ),
        )

    def test_masked_subset_uniform_but_unlike_worker_zero_is_exact(self):
        """Momentum-free SGD where a masked subset's weight decays are
        internally uniform yet differ from worker 0's: the cache-blocked fast
        path (which reads worker 0's decay) must not be taken for it."""
        from helpers.parity import run_masked_step_parity

        masks = [
            np.array([False, True, True, True]),  # uniform wd=0.1 subset, w0 absent
            np.array([True, False, False, False]),  # worker 0 alone (wd=0)
            np.array([True, True, True, True]),
        ] * 3
        run_masked_step_parity(
            masks,
            exact=True,
            num_workers=4,
            optimizer_factory=lambda worker_id: SGD(
                0.05, weight_decay=0.0 if worker_id == 0 else 0.1
            ),
        )

    def test_heterogeneous_schedules_follow_per_worker_step_counts(self):
        from repro.optim.schedules import StepDecaySchedule

        run_fda_parity(
            threshold=0.5,
            steps=30,
            dropout_rate=0.4,
            optimizer_factory=lambda worker_id: SGD(
                StepDecaySchedule(0.05, every=5 + worker_id, decay=0.5)
            ),
            exact=True,
        )


class TestPerWorkerDriving:
    def test_step_worker_matches_sequential_exactly(self):
        seq_cluster, bat_cluster = make_cluster_pair(
            num_workers=4, optimizer_factory=lambda worker_id: SGD(0.05, momentum=0.9)
        )
        order = [0, 2, 1, 3, 3, 0, 1, 2, 2, 1, 0, 3] * 3
        for worker_id in order:
            loss_seq = seq_cluster.engine.step_worker(worker_id)
            loss_bat = bat_cluster.engine.step_worker(worker_id)
            np.testing.assert_allclose(loss_bat, loss_seq, rtol=0.0, atol=0.0)
        assert_cluster_states_match(seq_cluster, bat_cluster, exact=True)

    def test_drive_modes_compose(self):
        """Per-worker, epoch, and lockstep driving share one optimizer state
        (the stacked rows ARE the workers' own state), so mixing drive modes
        is legal and stays in lockstep parity with the sequential engine."""
        seq_cluster, bat_cluster = make_cluster_pair(
            num_workers=3, optimizer_factory=lambda worker_id: SGD(0.05, momentum=0.9)
        )
        for cluster in (seq_cluster, bat_cluster):
            cluster.engine.step_worker(1)
            cluster.step_all()
            cluster.engine.epoch_worker(0)
            cluster.step_all(active=np.array([True, False, True]))
            cluster.workers[2].local_step()  # direct driving, bypassing the engine
            cluster.step_all()
        assert_cluster_states_match(seq_cluster, bat_cluster, exact=True)
        assert_ledgers_equal(seq_cluster, bat_cluster)

    def test_epoch_all_matches(self):
        """FedOpt-style local epochs run as single-row batched slices."""
        seq_cluster, bat_cluster = make_cluster_pair(
            num_workers=3, optimizer_factory=lambda worker_id: SGD(0.05)
        )
        for _ in range(2):
            loss_seq = seq_cluster.epoch_all()
            loss_bat = bat_cluster.epoch_all()
            np.testing.assert_allclose(loss_bat, loss_seq, rtol=0.0, atol=0.0)
        assert_cluster_states_match(seq_cluster, bat_cluster, exact=True)
        assert [w.last_loss for w in seq_cluster.workers] == [
            w.last_loss for w in bat_cluster.workers
        ]


class TestAsyncParity:
    def test_async_runs_are_engine_independent(self):
        """Event-driven completions run single-row slices of the batched
        kernels with identical per-worker arithmetic, so asynchronous
        trajectories must be *exactly* equal across engines."""
        outcomes = {}
        for execution in EXECUTIONS:
            cluster = make_cluster(execution)
            trainer = AsynchronousFDATrainer(
                cluster,
                make_monitor("linear", cluster.model_dimension, seed=3),
                threshold=0.5,
                profile=StragglerProfile(straggler_fraction=0.25, straggler_factor=3.0),
                seed=5,
            )
            events = trainer.run_events(80)
            outcomes[execution] = (cluster, trainer, events)
        seq_cluster, seq_trainer, seq_events = outcomes["sequential"]
        bat_cluster, bat_trainer, bat_events = outcomes["batched"]
        assert [(e.worker_id, e.step_index, e.synchronized) for e in seq_events] == [
            (e.worker_id, e.step_index, e.synchronized) for e in bat_events
        ]
        np.testing.assert_allclose(
            seq_cluster.parameter_matrix,
            bat_cluster.parameter_matrix,
            rtol=0.0,
            atol=0.0,
        )
        assert seq_trainer.synchronization_count == bat_trainer.synchronization_count
        assert_ledgers_equal(seq_cluster, bat_cluster)


class TestStackedSampler:
    def test_reproduces_per_worker_rng_streams(self):
        rng = np.random.default_rng(0)
        datasets = [
            Dataset(rng.normal(size=(30, 5)), rng.integers(0, 3, size=30), 3)
            for _ in range(4)
        ]
        stacked = StackedSampler.for_datasets(datasets, batch_size=6, seeds=range(4))
        solo = [BatchSampler(ds, 6, seed=seed) for seed, ds in enumerate(datasets)]
        for _ in range(5):
            x, y = stacked.sample()
            assert x.shape == (4, 6, 5) and y.shape == (4, 6)
            for worker, sampler in enumerate(solo):
                expected_x, expected_y = sampler.sample()
                np.testing.assert_array_equal(x[worker], expected_x)
                np.testing.assert_array_equal(y[worker], expected_y)

    def test_masked_rows_draw_only_active_streams(self):
        rng = np.random.default_rng(0)
        datasets = [
            Dataset(rng.normal(size=(30, 5)), rng.integers(0, 3, size=30), 3)
            for _ in range(4)
        ]
        stacked = StackedSampler.for_datasets(datasets, batch_size=6, seeds=range(4))
        solo = [BatchSampler(ds, 6, seed=seed) for seed, ds in enumerate(datasets)]
        rows = np.array([1, 3])
        x, y = stacked.sample(rows=rows)
        assert x.shape == (2, 6, 5) and y.shape == (2, 6)
        for position, worker in enumerate(rows):
            expected_x, expected_y = solo[worker].sample()
            np.testing.assert_array_equal(x[position], expected_x)
            np.testing.assert_array_equal(y[position], expected_y)
        # Workers 0 and 2 consumed nothing: their next stacked draw equals
        # their solo samplers' *first* draw.
        x, y = stacked.sample(rows=np.array([0, 2]))
        for position, worker in enumerate((0, 2)):
            expected_x, _ = solo[worker].sample()
            np.testing.assert_array_equal(x[position], expected_x)

    def test_rejects_mismatched_workers(self):
        from repro.exceptions import DataError

        rng = np.random.default_rng(0)
        a = Dataset(rng.normal(size=(10, 5)), rng.integers(0, 2, size=10), 2)
        b = Dataset(rng.normal(size=(10, 4)), rng.integers(0, 2, size=10), 2)
        with pytest.raises(DataError):
            StackedSampler([BatchSampler(a, 4, seed=0), BatchSampler(b, 4, seed=1)])
        with pytest.raises(DataError):
            StackedSampler([BatchSampler(a, 4, seed=0), BatchSampler(a, 5, seed=1)])
        with pytest.raises(DataError):
            StackedSampler([])


class TestEngineSelection:
    def test_cluster_exposes_engine_and_execution(self):
        sequential = make_cluster("sequential", num_workers=2)
        assert sequential.execution == "sequential"
        assert isinstance(sequential.engine, SequentialEngine)
        assert sequential.gradient_matrix is None

        batched = make_cluster("batched", num_workers=2)
        assert batched.execution == "batched"
        assert isinstance(batched.engine, BatchedEngine)
        assert batched.gradient_matrix.shape == (2, batched.model_dimension)
        # The gradient matrix aliases the workers' gradient planes.
        batched.step_all()
        np.testing.assert_array_equal(
            batched.gradient_matrix[1], batched.workers[1].model.gradients_view()
        )

    def test_masked_steps_leave_inactive_rows_untouched(self):
        cluster = make_cluster("batched", num_workers=4)
        cluster.step_all()
        before_params = cluster.parameter_matrix.copy()
        before_grads = cluster.gradient_matrix.copy()
        cluster.step_all(active=np.array([True, False, True, False]))
        for inactive in (1, 3):
            np.testing.assert_array_equal(
                cluster.parameter_matrix[inactive], before_params[inactive]
            )
            np.testing.assert_array_equal(
                cluster.gradient_matrix[inactive], before_grads[inactive]
            )
        for active in (0, 2):
            assert not np.array_equal(
                cluster.parameter_matrix[active], before_params[active]
            )

    def test_empty_mask_is_a_no_op(self):
        cluster = make_cluster("batched", num_workers=3)
        before = cluster.parameter_matrix.copy()
        assert cluster.step_all(active=np.zeros(3, dtype=bool)) == 0.0
        np.testing.assert_array_equal(cluster.parameter_matrix, before)
        assert all(w.steps_performed == 0 for w in cluster.workers)

    def test_dropout_timeline_accepted(self):
        """The lockstep-only guard is gone: dropout timelines run batched."""
        cluster = make_cluster(
            "batched", num_workers=4, timeline=Timeline(4, dropout_rate=0.5, seed=0)
        )
        for _ in range(5):
            cluster.step_all(active=cluster.timeline.sample_participation())
        assert sum(w.steps_performed for w in cluster.workers) > 0


class TestEngineGuards:
    """Every remaining ``ConfigurationError`` branch in ``distributed/engine.py``,
    pinned by message."""

    def test_unknown_execution_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown execution mode"):
            make_cluster("vectorized")

    def test_non_inplace_workers_rejected(self):
        rng = np.random.default_rng(0)
        workers = []
        for worker_id in range(2):
            x = rng.normal(size=(20, 6))
            y = rng.integers(0, 3, size=20)
            workers.append(
                Worker(
                    worker_id,
                    mlp_factory(),
                    Dataset(x, y, 3),
                    Adam(0.01),
                    batch_size=4,
                    inplace=worker_id == 0,
                )
            )
        with pytest.raises(ConfigurationError, match="requires inplace workers"):
            SimulatedCluster(workers, execution="batched")

    def test_pre_stepped_optimizers_rejected(self):
        # A pre-stepped optimizer's (d,) moments would be silently discarded
        # by the row binding while its step count kept counting.
        rng = np.random.default_rng(0)
        workers = []
        for worker_id in range(2):
            x = rng.normal(size=(20, 6))
            y = rng.integers(0, 3, size=20)
            workers.append(
                Worker(worker_id, mlp_factory(), Dataset(x, y, 3), Adam(0.01), batch_size=4)
            )
        for worker in workers:
            worker.local_step()
        with pytest.raises(ConfigurationError, match="fresh optimizers"):
            SimulatedCluster(workers, execution="batched")

    def test_unsupported_layers_rejected_with_clear_message(self):
        # densenet_mini contains DenseBlock/TransitionDown composites, which
        # (unlike Dropout) still have no batched kernel.
        with pytest.raises(ConfigurationError, match="does not support these layers"):
            make_cluster(
                "batched",
                model_factory=lambda: densenet_mini(
                    input_shape=(8, 8, 1), num_classes=3, blocks=(1,), seed=0
                ),
                sample_shape=(8, 8, 1),
                num_workers=2,
            )

    def test_structurally_different_models_rejected(self):
        # Same parameter count, different activation: the batched kernels are
        # built from worker 0's layers, so this must be rejected, not
        # silently trained with the wrong activation.
        rng = np.random.default_rng(0)
        workers = []
        for worker_id, activation in enumerate(("relu", "tanh")):
            x = rng.normal(size=(20, 6))
            y = rng.integers(0, 3, size=20)
            model = mlp(6, 3, hidden_units=(10, 8), activation=activation, seed=11)
            workers.append(
                Worker(worker_id, model, Dataset(x, y, 3), Adam(0.01), batch_size=4)
            )
        with pytest.raises(ConfigurationError, match="model architecture differs"):
            SimulatedCluster(workers, execution="batched")

    def _workers_with(self, build):
        rng = np.random.default_rng(0)
        workers = []
        for worker_id in range(2):
            x = rng.normal(size=(20, 6))
            y = rng.integers(0, 3, size=20)
            workers.append(build(worker_id, Dataset(x, y, 3)))
        return workers

    def test_mixed_optimizer_types_rejected(self):
        workers = self._workers_with(
            lambda worker_id, data: Worker(
                worker_id,
                mlp_factory(),
                data,
                Adam(0.01) if worker_id == 0 else SGD(0.01),
                batch_size=4,
            )
        )
        with pytest.raises(ConfigurationError, match="optimizer type"):
            SimulatedCluster(workers, execution="batched")

    def test_mismatched_loss_rejected(self):
        workers = self._workers_with(
            lambda worker_id, data: Worker(
                worker_id,
                mlp_factory(),
                data,
                Adam(0.01),
                batch_size=4,
                loss=MeanSquaredError() if worker_id else None,
            )
        )
        with pytest.raises(ConfigurationError, match="loss configuration differs"):
            SimulatedCluster(workers, execution="batched")

    def test_mismatched_batch_size_rejected(self):
        workers = self._workers_with(
            lambda worker_id, data: Worker(
                worker_id, mlp_factory(), data, Adam(0.01), batch_size=4 + worker_id
            )
        )
        with pytest.raises(ConfigurationError, match="batch_size"):
            SimulatedCluster(workers, execution="batched")

    def test_heterogeneous_hyperparameters_accepted(self):
        """The old identically-configured-optimizers guard is gone: scalar
        hyper-parameter differences ride per-row columns."""
        workers = self._workers_with(
            lambda worker_id, data: Worker(
                worker_id, mlp_factory(), data, Adam(0.01 * (worker_id + 1)), batch_size=4
            )
        )
        cluster = SimulatedCluster(workers, execution="batched")
        assert cluster.step_all() > 0.0


class TestStackedOptimizerGuards:
    """The structural guards that live in ``optim/base.py`` (raised during
    batched-engine construction)."""

    def test_mixed_nesterov_rejected(self):
        with pytest.raises(ConfigurationError, match="nesterov"):
            StackedOptimizer(
                [SGD(0.01, momentum=0.9, nesterov=True), SGD(0.01, momentum=0.9)], 4
            )

    def test_optimizer_without_stacked_rule_rejected(self):
        class Esoteric(Optimizer):
            def _update(self, params, grads, learning_rate):
                return params - learning_rate * grads

        with pytest.raises(ConfigurationError, match="no stacked"):
            StackedOptimizer([Esoteric(), Esoteric()], 4)

    def test_mixed_types_rejected(self):
        with pytest.raises(ConfigurationError, match="one optimizer type"):
            StackedOptimizer([SGD(0.01), Adam(0.01)], 4)

    def test_pre_stepped_rejected(self):
        stepped = SGD(0.01)
        stepped.step_inplace(np.zeros(4), np.zeros(4))
        with pytest.raises(ConfigurationError, match="already stepped"):
            StackedOptimizer([stepped, SGD(0.01)], 4)


class TestWorkloadExecutionField:
    def test_build_cluster_threads_execution_through(self, blobs_workload):
        from repro.experiments.setup import build_cluster

        cluster, _ = build_cluster(blobs_workload.with_execution("batched"))
        assert cluster.execution == "batched"
        cluster2, _ = build_cluster(blobs_workload)
        assert cluster2.execution == "sequential"

    def test_build_cluster_allows_batched_with_dropout(self, blobs_workload):
        from repro.experiments.setup import build_cluster

        workload = blobs_workload.with_execution("batched").with_timeline(
            dropout_rate=0.25
        )
        cluster, _ = build_cluster(workload)
        assert cluster.execution == "batched"
        assert cluster.timeline.dropout_rate == 0.25

    def test_invalid_execution_rejected(self, blobs_workload):
        with pytest.raises(ConfigurationError):
            blobs_workload.with_execution("turbo")

    def test_run_result_records_and_persists_execution(self, tmp_path, blobs_workload):
        from repro.experiments.persistence import load_results, save_results
        from repro.experiments.run import TrainingRun
        from repro.experiments.setup import build_cluster
        from repro.strategies.synchronous import SynchronousStrategy

        cluster, test_dataset = build_cluster(blobs_workload.with_execution("batched"))
        run = TrainingRun(accuracy_target=0.99, max_steps=8, eval_every_steps=4)
        result = run.execute(
            SynchronousStrategy(), cluster, test_dataset, workload_name="blobs"
        )
        assert result.execution == "batched"
        path = tmp_path / "results.json"
        save_results([result], path)
        (loaded,) = load_results(path)
        assert loaded.execution == "batched"
        # Files written before the field existed still load (default applies).
        import json

        document = json.loads(path.read_text())
        del document["results"][0]["execution"]
        path.write_text(json.dumps(document))
        (legacy,) = load_results(path)
        assert legacy.execution == "sequential"
