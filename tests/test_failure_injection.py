"""Failure-injection and edge-case tests.

Covers the error paths a downstream user is most likely to hit: diverging
training, degenerate worker counts, shards smaller than the batch size, and
evaluation of models that were never trained.
"""

import numpy as np
import pytest

from repro.core.fda import FDATrainer
from repro.core.monitor import ExactMonitor
from repro.data.partition import partition_dataset
from repro.data.synthetic import gaussian_blobs
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.worker import Worker
from repro.exceptions import TrainingError
from repro.experiments.run import TrainingRun
from repro.experiments.setup import build_cluster
from repro.nn.architectures import mlp
from repro.optim.sgd import SGD
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.synchronous import SynchronousStrategy


def make_worker(learning_rate=0.01, num_samples=40, batch_size=16, seed=0):
    data = gaussian_blobs(num_samples, feature_dim=6, num_classes=3, seed=seed)
    return Worker(
        worker_id=0,
        model=mlp(6, 3, hidden_units=(8,), seed=seed),
        dataset=data,
        optimizer=SGD(learning_rate),
        batch_size=batch_size,
        seed=seed,
    )


class TestDivergenceDetection:
    def test_exploding_learning_rate_raises_training_error(self):
        worker = make_worker(learning_rate=1e9)
        with pytest.raises(TrainingError):
            for _ in range(50):
                worker.local_step()

    def test_error_message_names_the_worker(self):
        worker = make_worker(learning_rate=1e9)
        with pytest.raises(TrainingError, match="worker 0"):
            for _ in range(50):
                worker.local_step()


class TestDegenerateConfigurations:
    def test_single_worker_cluster_works(self):
        data = gaussian_blobs(60, feature_dim=6, num_classes=3, seed=0)
        worker = Worker(0, mlp(6, 3, seed=0), data, SGD(0.05), batch_size=8, seed=0)
        cluster = SimulatedCluster([worker])
        # Synchronization of a single worker moves no bytes and is a no-op.
        before = worker.get_parameters()
        cluster.synchronize()
        np.testing.assert_array_equal(worker.get_parameters(), before)
        assert cluster.total_bytes == 0
        assert cluster.model_variance() == 0.0

    def test_fda_with_single_worker_never_synchronizes_meaningfully(self):
        data = gaussian_blobs(60, feature_dim=6, num_classes=3, seed=0)
        worker = Worker(0, mlp(6, 3, seed=0), data, SGD(0.05), batch_size=8, seed=0)
        cluster = SimulatedCluster([worker])
        trainer = FDATrainer(cluster, ExactMonitor(), threshold=0.0)
        trainer.run_steps(5)
        # Variance of a single model is identically zero, so even Theta=0 only
        # triggers when the estimate is strictly positive — it never is.
        assert cluster.model_variance() == 0.0

    def test_shard_smaller_than_batch_size(self):
        worker = make_worker(num_samples=5, batch_size=16)
        loss = worker.local_step()
        assert np.isfinite(loss)
        assert worker.batches_per_epoch == 1

    def test_workers_with_very_uneven_shards(self):
        data = gaussian_blobs(101, feature_dim=6, num_classes=3, seed=0)
        shards = partition_dataset(data, 4, "dirichlet", seed=0, alpha=0.05)
        workers = [
            Worker(i, mlp(6, 3, seed=0), shard, SGD(0.05), batch_size=8, seed=i)
            for i, shard in enumerate(shards)
        ]
        cluster = SimulatedCluster(workers)
        cluster.step_all()
        cluster.synchronize()
        assert cluster.model_variance() == pytest.approx(0.0, abs=1e-18)

    def test_untrained_model_evaluates_near_chance(self):
        data = gaussian_blobs(300, feature_dim=6, num_classes=3, seed=0)
        model = mlp(6, 3, seed=0)
        _, accuracy = model.evaluate(data.x, data.y)
        assert 0.1 <= accuracy <= 0.7  # wide band: initialization is arbitrary


class TestRunLoopEdgeCases:
    def test_unreachable_target_terminates(self, blobs_workload):
        cluster, test_dataset = build_cluster(blobs_workload)
        run = TrainingRun(accuracy_target=1.0, max_steps=25, eval_every_steps=10)
        result = run.execute(SynchronousStrategy(), cluster, test_dataset)
        assert not result.reached_target
        assert result.evaluations >= 2

    def test_eval_interval_larger_than_budget(self, blobs_workload):
        cluster, test_dataset = build_cluster(blobs_workload)
        run = TrainingRun(accuracy_target=0.99, max_steps=10, eval_every_steps=100)
        result = run.execute(FDAStrategy(threshold=1.0), cluster, test_dataset)
        assert result.evaluations == 1
        assert result.parallel_steps == 10

    def test_zero_dimension_state_never_occurs(self, blobs_workload):
        cluster, _ = build_cluster(blobs_workload)
        strategy = FDAStrategy(threshold=1.0).attach(cluster)
        assert strategy.trainer.state_elements_per_step >= 2
