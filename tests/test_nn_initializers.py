"""Tests for weight initializers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.initializers import (
    constant_init,
    get_initializer,
    glorot_normal,
    glorot_uniform,
    he_normal,
    he_uniform,
    lecun_normal,
    ones_init,
    zeros_init,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestGlorotUniform:
    def test_shape_and_bounds(self, rng):
        weights = glorot_uniform((50, 80), 50, 80, rng)
        limit = np.sqrt(6.0 / (50 + 80))
        assert weights.shape == (50, 80)
        assert np.all(np.abs(weights) <= limit)

    def test_zero_mean(self, rng):
        weights = glorot_uniform((200, 200), 200, 200, rng)
        assert abs(weights.mean()) < 0.01

    def test_rejects_bad_fans(self, rng):
        with pytest.raises(ConfigurationError):
            glorot_uniform((3, 3), 0, 3, rng)


class TestHeNormal:
    def test_standard_deviation(self, rng):
        weights = he_normal((400, 100), 400, 100, rng)
        expected = np.sqrt(2.0 / 400)
        assert weights.std() == pytest.approx(expected, rel=0.1)

    def test_he_uniform_bounds(self, rng):
        weights = he_uniform((64, 64), 64, 64, rng)
        assert np.all(np.abs(weights) <= np.sqrt(6.0 / 64))


class TestOtherInitializers:
    def test_glorot_normal_std(self, rng):
        weights = glorot_normal((300, 300), 300, 300, rng)
        assert weights.std() == pytest.approx(np.sqrt(2.0 / 600), rel=0.1)

    def test_lecun_normal_std(self, rng):
        weights = lecun_normal((500, 10), 500, 10, rng)
        assert weights.std() == pytest.approx(np.sqrt(1.0 / 500), rel=0.1)

    def test_zeros_and_ones(self, rng):
        assert np.all(zeros_init((5, 5), 5, 5, rng) == 0.0)
        assert np.all(ones_init((5,), 5, 5, rng) == 1.0)

    def test_constant(self, rng):
        init = constant_init(0.25)
        assert np.all(init((4, 2), 4, 2, rng) == 0.25)


class TestGetInitializer:
    def test_resolves_names(self):
        assert get_initializer("he_normal") is he_normal
        assert get_initializer("glorot_uniform") is glorot_uniform

    def test_passes_callables_through(self):
        init = constant_init(1.0)
        assert get_initializer(init) is init

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            get_initializer("not-a-real-initializer")

    def test_determinism_per_seed(self):
        a = glorot_uniform((10, 10), 10, 10, np.random.default_rng(3))
        b = glorot_uniform((10, 10), 10, 10, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)
