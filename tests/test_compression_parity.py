"""Cross-engine parity for compressed runs (ISSUE-5 acceptance criterion).

Compression lives at the cluster's collective layer, *above* the execution
engine: both engines feed the same ``(K, d)`` parameter matrix into the same
row-wise kernels at the same protocol points.  These tests pin that claim for
every server-based strategy — FDA, Local-SGD, FedOpt, FedProx, SCAFFOLD, and
the BSP baseline — running with error-feedback top-k on the sequential and
batched engines through the reusable harness in :mod:`tests.helpers.parity`:
SGD trajectories must be value-exact and the byte ledgers exactly equal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import CompressionConfig
from repro.optim.sgd import SGD
from repro.optim.server import FedAvgM
from repro.strategies.drift_control import FedProxStrategy, ScaffoldStrategy
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.fedopt import FedOptStrategy
from repro.strategies.local_sgd import LocalSGDStrategy
from repro.strategies.synchronous import SynchronousStrategy

from helpers.parity import make_cluster, run_fda_parity, run_strategy_parity

#: The compression setting the acceptance criterion names: top-k + error
#: feedback, uniform across strategies.
TOPK_EF = CompressionConfig("topk", ratio=0.25, error_feedback=True)

#: Value-exact scenarios need SGD (the engines' bit-identical stacked rule).
SGD_FACTORY = lambda worker_id: SGD(0.05)  # noqa: E731 - a tiny test fixture

#: step-cadence strategies: several rounds are cheap.
STEP_STRATEGIES = {
    "synchronous": lambda: SynchronousStrategy(),
    "local-sgd": lambda: LocalSGDStrategy(tau=3),
    "fda": lambda: FDAStrategy(threshold=0.05, variant="linear"),
}

#: epoch-cadence strategies: fewer rounds keep the grid fast.
EPOCH_STRATEGIES = {
    "fedopt": lambda: FedOptStrategy(FedAvgM(learning_rate=0.5, momentum=0.9), local_epochs=1),
    "fedprox": lambda: FedProxStrategy(mu=0.05, local_epochs=1),
    "scaffold": lambda: ScaffoldStrategy(local_epochs=1, local_learning_rate_hint=0.05),
}


@pytest.mark.parametrize("name", sorted(STEP_STRATEGIES))
def test_step_strategies_compressed_parity_value_exact(name):
    run_strategy_parity(
        STEP_STRATEGIES[name],
        rounds=8,
        exact=True,
        num_workers=4,
        optimizer_factory=SGD_FACTORY,
        compression=TOPK_EF,
    )


@pytest.mark.parametrize("name", sorted(EPOCH_STRATEGIES))
def test_epoch_strategies_compressed_parity_value_exact(name):
    run_strategy_parity(
        EPOCH_STRATEGIES[name],
        rounds=3,
        exact=True,
        num_workers=4,
        optimizer_factory=SGD_FACTORY,
        compression=TOPK_EF,
    )


@pytest.mark.float32_smoke
@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_fda_trainer_compressed_parity_under_dropout(dtype):
    """FDA's triggered syncs compress identically on both engines, masked included.

    The grid cell runs at both plane dtypes: float64 is held to value-exact
    parity; float32 uses the harness's eps-derived tolerance (the kernels are
    shared, but single-precision GEMMs re-associate more visibly) while the
    error-feedback residual, sync decisions, and ledgers stay engine-exact.
    """
    run_fda_parity(
        variant="linear",
        threshold=0.05,
        steps=16,
        exact=dtype == "float64",
        dtype=dtype,
        num_workers=4,
        optimizer_factory=SGD_FACTORY,
        dropout_rate=0.3,
        compression=TOPK_EF,
    )


def test_compression_reduces_bytes_identically_on_both_engines():
    """The savings themselves — not just the trajectories — are engine-independent."""
    totals = {}
    for compression in (None, TOPK_EF):
        for execution in ("sequential", "batched"):
            cluster = make_cluster(
                execution,
                num_workers=4,
                optimizer_factory=SGD_FACTORY,
                compression=compression,
            )
            SynchronousStrategy().attach(cluster).run_steps(6)
            totals[(compression is not None, execution)] = cluster.total_bytes
    assert totals[(True, "sequential")] == totals[(True, "batched")]
    assert totals[(False, "sequential")] == totals[(False, "batched")]
    assert totals[(True, "sequential")] < totals[(False, "sequential")]


def test_error_feedback_residuals_match_across_engines():
    """The (K, d) residual memory itself must be engine-independent, bit for bit."""
    residuals = {}
    for execution in ("sequential", "batched"):
        cluster = make_cluster(
            execution,
            num_workers=4,
            optimizer_factory=SGD_FACTORY,
            compression=TOPK_EF,
        )
        FDAStrategy(threshold=0.05, variant="linear").attach(cluster).run_steps(10)
        residuals[execution] = cluster.compression.residual_matrix.copy()
    np.testing.assert_array_equal(residuals["sequential"], residuals["batched"])
