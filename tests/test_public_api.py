"""Tests for the public API surface: exports exist, are documented, and are stable."""

import importlib

import pytest

import repro


PUBLIC_SUBPACKAGES = [
    "repro.nn",
    "repro.optim",
    "repro.sketch",
    "repro.data",
    "repro.distributed",
    "repro.compression",
    "repro.core",
    "repro.strategies",
    "repro.experiments",
    "repro.utils",
    "repro.cli",
]


class TestTopLevelExports:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert hasattr(repro, name), f"repro.__all__ lists {name} but it is not importable"

    def test_all_public_objects_are_documented(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            obj = getattr(repro, name)
            assert getattr(obj, "__doc__", None), f"repro.{name} has no docstring"

    def test_key_entry_points_present(self):
        for name in (
            "FDAStrategy",
            "SynchronousStrategy",
            "FedOptStrategy",
            "TrainingRun",
            "build_cluster",
            "AmsSketch",
            "SimulatedCluster",
            "theta_guideline",
        ):
            assert name in repro.__all__


class TestSubpackages:
    @pytest.mark.parametrize("module_name", PUBLIC_SUBPACKAGES)
    def test_subpackage_imports_and_is_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    @pytest.mark.parametrize(
        "module_name",
        [name for name in PUBLIC_SUBPACKAGES if name not in ("repro.cli",)],
    )
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", [])
        assert exported, f"{module_name} should declare __all__"
        for name in exported:
            assert hasattr(module, name), f"{module_name}.__all__ lists missing name {name}"

    def test_strategies_cover_all_paper_algorithms(self):
        import repro.strategies as strategies

        for name in (
            "SynchronousStrategy",
            "LocalSGDStrategy",
            "FedOptStrategy",
            "FDAStrategy",
            "FedProxStrategy",
            "ScaffoldStrategy",
        ):
            assert name in strategies.__all__
