"""Tests for batch sampling and the frozen feature extractor."""

import numpy as np
import pytest

from repro.data.features import PretrainedFeatureExtractor
from repro.data.loaders import BatchSampler, EpochIterator
from repro.data.synthetic import gaussian_blobs
from repro.exceptions import DataError


@pytest.fixture()
def data():
    return gaussian_blobs(57, feature_dim=5, num_classes=3, seed=0)


class TestBatchSampler:
    def test_batch_shapes(self, data):
        sampler = BatchSampler(data, batch_size=8, seed=0)
        x, y = sampler.sample()
        assert x.shape == (8, 5) and y.shape == (8,)

    def test_reproducible_with_seed(self, data):
        a = BatchSampler(data, 8, seed=5)
        b = BatchSampler(data, 8, seed=5)
        np.testing.assert_array_equal(a.sample()[0], b.sample()[0])

    def test_iteration_is_endless(self, data):
        sampler = BatchSampler(data, 4, seed=0)
        batches = [batch for batch, _ in zip(sampler, range(10))]
        assert len(batches) == 10

    def test_rejects_empty_dataset(self, data):
        empty = data.subset([])
        with pytest.raises(DataError):
            BatchSampler(empty, 4)

    def test_rejects_bad_batch_size(self, data):
        with pytest.raises(DataError):
            BatchSampler(data, 0)


class TestEpochIterator:
    def test_epoch_covers_every_sample_once(self, data):
        iterator = EpochIterator(data, batch_size=10, seed=0)
        seen = sum(batch_y.shape[0] for _, batch_y in iterator.epoch())
        assert seen == len(data)

    def test_batches_per_epoch(self, data):
        iterator = EpochIterator(data, batch_size=10)
        assert iterator.batches_per_epoch == 6  # 57 samples -> 5 full + 1 partial

    def test_drop_last(self, data):
        iterator = EpochIterator(data, batch_size=10, drop_last=True, seed=0)
        sizes = [y.shape[0] for _, y in iterator.epoch()]
        assert all(size == 10 for size in sizes)

    def test_shuffling_differs_across_epochs(self, data):
        iterator = EpochIterator(data, batch_size=57, seed=0)
        first = next(iter(iterator.epoch()))[1]
        second = next(iter(iterator.epoch()))[1]
        assert not np.array_equal(first, second)


class TestFeatureExtractor:
    def test_output_dimension(self):
        extractor = PretrainedFeatureExtractor(input_dim=10, hidden_dims=(16, 8), seed=0)
        assert extractor.output_dim == 8
        features = extractor.transform(np.zeros((4, 10)))
        assert features.shape == (4, 8)

    def test_deterministic(self):
        a = PretrainedFeatureExtractor(6, (12,), seed=3)
        b = PretrainedFeatureExtractor(6, (12,), seed=3)
        x = np.random.default_rng(0).normal(size=(5, 6))
        np.testing.assert_array_equal(a.transform(x), b.transform(x))

    def test_flattens_image_inputs(self):
        extractor = PretrainedFeatureExtractor(input_dim=2 * 2 * 3, hidden_dims=(4,), seed=0)
        features = extractor.transform(np.zeros((7, 2, 2, 3)))
        assert features.shape == (7, 4)

    def test_transform_dataset_keeps_labels(self):
        data = gaussian_blobs(40, feature_dim=5, num_classes=2, seed=0)
        extractor = PretrainedFeatureExtractor(5, (6,), seed=0)
        transformed = extractor.transform_dataset(data)
        np.testing.assert_array_equal(transformed.y, data.y)
        assert transformed.x.shape == (40, 6)

    def test_rejects_wrong_input_dim(self):
        extractor = PretrainedFeatureExtractor(5, (6,), seed=0)
        with pytest.raises(DataError):
            extractor.transform(np.zeros((3, 4)))

    def test_rejects_invalid_configuration(self):
        with pytest.raises(DataError):
            PretrainedFeatureExtractor(0, (4,))
        with pytest.raises(DataError):
            PretrainedFeatureExtractor(4, ())
