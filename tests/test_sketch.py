"""Tests for the AMS sketch: hashing, estimation accuracy, and linearity.

The linearity and (1 ± ε) estimation properties are exactly what Theorem 3.1
of the paper relies on, so they get property-based coverage here.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CommunicationError, ConfigurationError, ShapeError
from repro.sketch.ams import AmsSketch, estimate_l2_squared
from repro.sketch.hashing import FourWiseHash


class TestFourWiseHash:
    def test_deterministic_per_seed(self):
        indices = np.arange(100, dtype=np.uint64)
        a = FourWiseHash(3, seed=5)(indices)
        b = FourWiseHash(3, seed=5)(indices)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        indices = np.arange(100, dtype=np.uint64)
        a = FourWiseHash(3, seed=5)(indices)
        b = FourWiseHash(3, seed=6)(indices)
        assert not np.array_equal(a, b)

    def test_buckets_in_range(self):
        hashing = FourWiseHash(4, seed=0)
        buckets = hashing.buckets(np.arange(1000, dtype=np.uint64), 17)
        assert buckets.min() >= 0 and buckets.max() < 17

    def test_buckets_roughly_uniform(self):
        hashing = FourWiseHash(1, seed=1)
        buckets = hashing.buckets(np.arange(20000, dtype=np.uint64), 10)
        counts = np.bincount(buckets[0], minlength=10)
        assert counts.min() > 1500 and counts.max() < 2500

    def test_signs_are_plus_minus_one_and_balanced(self):
        hashing = FourWiseHash(1, seed=2)
        signs = hashing.signs(np.arange(20000, dtype=np.uint64))
        assert set(np.unique(signs)) == {-1.0, 1.0}
        assert abs(signs.mean()) < 0.05

    def test_invalid_rows(self):
        with pytest.raises(ConfigurationError):
            FourWiseHash(0)

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            FourWiseHash(2).buckets(np.arange(5, dtype=np.uint64), 0)


class TestAmsSketch:
    def test_shape_and_size(self):
        sketch = AmsSketch(depth=5, width=250)
        assert sketch.shape == (5, 250)
        assert sketch.size_bytes == 5 * 250 * 4  # the 5 kB figure quoted in the paper

    def test_sketch_shape(self):
        operator = AmsSketch(depth=3, width=16)
        matrix = operator.sketch(np.ones(100))
        assert matrix.shape == (3, 16)

    def test_estimate_within_epsilon_for_typical_vectors(self):
        operator = AmsSketch(depth=5, width=250, seed=0)
        rng = np.random.default_rng(0)
        vector = rng.normal(size=5000)
        estimate = operator.estimate_l2_squared(operator.sketch(vector))
        true_value = float(np.dot(vector, vector))
        assert abs(estimate - true_value) / true_value < 0.15

    def test_estimate_zero_vector(self):
        operator = AmsSketch(depth=3, width=32)
        assert operator.estimate_l2_squared(operator.sketch(np.zeros(64))) == 0.0

    def test_linearity_exact(self):
        operator = AmsSketch(depth=4, width=32, seed=3)
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=200), rng.normal(size=200)
        combined = operator.sketch(2.0 * a - 0.5 * b)
        np.testing.assert_allclose(
            combined, 2.0 * operator.sketch(a) - 0.5 * operator.sketch(b), atol=1e-9
        )

    def test_average_of_sketches_is_sketch_of_average(self):
        operator = AmsSketch(depth=5, width=64, seed=0)
        rng = np.random.default_rng(2)
        vectors = [rng.normal(size=300) for _ in range(4)]
        averaged_sketches = np.mean([operator.sketch(v) for v in vectors], axis=0)
        sketch_of_average = operator.sketch(np.mean(vectors, axis=0))
        np.testing.assert_allclose(averaged_sketches, sketch_of_average, atol=1e-9)

    def test_dimension_change_reprepares_hashes(self):
        operator = AmsSketch(depth=3, width=16)
        operator.sketch(np.ones(50))
        assert operator.dimension == 50
        operator.sketch(np.ones(80))
        assert operator.dimension == 80

    def test_estimate_rejects_wrong_geometry(self):
        operator = AmsSketch(depth=3, width=16)
        with pytest.raises(CommunicationError):
            operator.estimate_l2_squared(np.zeros((2, 16)))

    def test_estimate_dot_sign(self):
        operator = AmsSketch(depth=5, width=128, seed=0)
        rng = np.random.default_rng(3)
        a = rng.normal(size=1000)
        dot_estimate = operator.estimate_dot(operator.sketch(a), operator.sketch(2.0 * a))
        assert dot_estimate > 0

    def test_rejects_non_1d_vectors(self):
        with pytest.raises(ShapeError):
            AmsSketch().sketch(np.zeros((3, 3)))

    def test_compatible_with(self):
        a = AmsSketch(depth=3, width=16, seed=1)
        b = AmsSketch(depth=3, width=16, seed=1)
        c = AmsSketch(depth=3, width=16, seed=2)
        assert a.compatible_with(b)
        assert not a.compatible_with(c)

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            AmsSketch(depth=0)
        with pytest.raises(ConfigurationError):
            AmsSketch(width=0)

    def test_estimate_l2_free_function_validates_shape(self):
        with pytest.raises(ShapeError):
            estimate_l2_squared(np.zeros(5))


class TestSketchProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        dimension=st.integers(min_value=10, max_value=400),
    )
    def test_estimate_is_positive_and_finite(self, seed, dimension):
        rng = np.random.default_rng(seed)
        vector = rng.normal(size=dimension)
        operator = AmsSketch(depth=5, width=128, seed=7)
        estimate = operator.estimate_l2_squared(operator.sketch(vector))
        assert np.isfinite(estimate) and estimate >= 0.0

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        scale=st.floats(min_value=0.1, max_value=100.0),
    )
    def test_estimate_scales_quadratically(self, seed, scale):
        rng = np.random.default_rng(seed)
        vector = rng.normal(size=500)
        operator = AmsSketch(depth=5, width=200, seed=11)
        base = operator.estimate_l2_squared(operator.sketch(vector))
        scaled = operator.estimate_l2_squared(operator.sketch(scale * vector))
        if base > 1e-12:
            assert scaled == pytest.approx(scale**2 * base, rel=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_relative_error_mostly_within_bound(self, seed):
        # With width 250 the nominal epsilon is ~18 % (sqrt(8/250)); check the
        # median-of-rows estimator stays within a loose multiple of that.
        rng = np.random.default_rng(seed)
        vector = rng.normal(size=2000)
        operator = AmsSketch(depth=5, width=250, seed=13)
        estimate = operator.estimate_l2_squared(operator.sketch(vector))
        true_value = float(np.dot(vector, vector))
        assert abs(estimate - true_value) / true_value < 0.5
