"""Tests for the Sequential model and its flat-parameter views."""

import numpy as np
import pytest

from repro.exceptions import ModelNotBuiltError, ShapeError
from repro.nn.architectures import mlp
from repro.nn.layers import BatchNorm, Dense
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential, average_models
from repro.optim.adam import Adam


def tiny_model(seed=0):
    return mlp(4, 3, hidden_units=(6,), seed=seed, name="tiny")


class TestConstructionAndShapes:
    def test_build_sets_shapes(self):
        model = Sequential([Dense(5, activation="relu"), Dense(2)]).build((3,), seed=0)
        assert model.input_shape == (3,)
        assert model.output_shape == (2,)
        assert model.num_parameters == (3 * 5 + 5) + (5 * 2 + 2)

    def test_unbuilt_model_raises(self):
        model = Sequential([Dense(5)])
        with pytest.raises(ModelNotBuiltError):
            model.forward(np.zeros((1, 3)))
        with pytest.raises(ModelNotBuiltError):
            model.get_parameters()

    def test_summary_mentions_every_layer(self):
        model = tiny_model()
        text = model.summary()
        assert "tiny_dense0" in text and "Total trainable parameters" in text

    def test_same_seed_gives_identical_models(self):
        a, b = tiny_model(seed=3), tiny_model(seed=3)
        np.testing.assert_array_equal(a.get_parameters(), b.get_parameters())

    def test_different_seeds_give_different_models(self):
        a, b = tiny_model(seed=1), tiny_model(seed=2)
        assert not np.array_equal(a.get_parameters(), b.get_parameters())


class TestFlatParameterViews:
    def test_round_trip(self):
        model = tiny_model()
        flat = model.get_parameters()
        modified = flat + 1.5
        model.set_parameters(modified)
        np.testing.assert_array_equal(model.get_parameters(), modified)

    def test_set_parameters_rejects_wrong_size(self):
        model = tiny_model()
        with pytest.raises(ShapeError):
            model.set_parameters(np.zeros(model.num_parameters + 1))

    def test_gradients_match_parameter_layout(self):
        model = tiny_model()
        model.train_batch(np.random.default_rng(0).normal(size=(8, 4)), np.zeros(8, dtype=int))
        grads = model.get_gradients()
        assert grads.shape == (model.num_parameters,)
        assert np.any(grads != 0)

    def test_buffers_round_trip(self):
        model = Sequential([Dense(4, activation="relu"), BatchNorm(), Dense(2)]).build((3,), seed=0)
        assert model.num_buffers == 8  # running mean + var of 4 channels
        buffers = model.get_buffers()
        model.set_buffers(buffers + 0.5)
        np.testing.assert_allclose(model.get_buffers(), buffers + 0.5)

    def test_clone_is_independent(self):
        model = tiny_model()
        clone = model.clone()
        clone.set_parameters(clone.get_parameters() * 0.0)
        assert not np.array_equal(model.get_parameters(), clone.get_parameters())

    def test_average_models(self):
        a, b = tiny_model(seed=1), tiny_model(seed=2)
        average = average_models([a, b])
        np.testing.assert_allclose(
            average, (a.get_parameters() + b.get_parameters()) / 2.0
        )


class TestTrainingAndEvaluation:
    def test_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(128, 4))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        model = mlp(4, 2, hidden_units=(8,), seed=0)
        optimizer = Adam(0.01)
        loss = SoftmaxCrossEntropy()
        initial = model.evaluate(x, y, loss)[0]
        for _ in range(60):
            model.train_batch(x, y, loss)
            model.set_parameters(optimizer.step(model.get_parameters(), model.get_gradients()))
        final_loss, final_accuracy = model.evaluate(x, y, loss)
        assert final_loss < initial
        assert final_accuracy > 0.9

    def test_predict_batches_consistently(self):
        model = tiny_model()
        x = np.random.default_rng(1).normal(size=(30, 4))
        np.testing.assert_allclose(model.predict(x, batch_size=7), model.predict(x, batch_size=30))

    def test_predict_empty_input(self):
        model = tiny_model()
        assert model.predict(np.zeros((0, 4))).shape == (0, 3)

    def test_evaluate_empty_dataset(self):
        model = tiny_model()
        assert model.evaluate(np.zeros((0, 4)), np.zeros(0, dtype=int)) == (0.0, 0.0)

    def test_evaluate_rejects_misaligned_data(self):
        model = tiny_model()
        with pytest.raises(ShapeError):
            model.evaluate(np.zeros((3, 4)), np.zeros(2, dtype=int))
