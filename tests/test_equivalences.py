"""Algorithmic equivalence tests.

These check identities that follow from the algorithms' definitions and are
stronger than behavioural trends:

* FDA with Θ = 0 and the exact monitor is *exactly* Synchronous (the paper's
  footnote: Synchronous is the Θ = 0 special case of Algorithm 1);
* Local-SGD with τ = 1 is exactly Synchronous;
* FedOpt with the plain FedAvg server optimizer and one local epoch equals the
  direct average of the client models after that epoch.
"""

import numpy as np
import pytest

from repro.experiments.setup import build_cluster
from repro.optim.server import FedAvg
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.fedopt import FedOptStrategy
from repro.strategies.local_sgd import LocalSGDStrategy
from repro.strategies.synchronous import SynchronousStrategy


def run_rounds(workload, strategy, num_rounds):
    cluster, _ = build_cluster(workload)
    strategy.attach(cluster)
    for _ in range(num_rounds):
        strategy.run_round()
    return cluster


class TestThetaZeroIsSynchronous:
    def test_parameter_trajectories_identical(self, blobs_workload):
        sync_cluster = run_rounds(blobs_workload, SynchronousStrategy(), 8)
        fda_cluster = run_rounds(blobs_workload, FDAStrategy(threshold=0.0, variant="exact"), 8)
        np.testing.assert_allclose(
            sync_cluster.average_parameters(), fda_cluster.average_parameters(), atol=1e-12
        )

    def test_synchronization_counts_match(self, blobs_workload):
        sync_cluster = run_rounds(blobs_workload, SynchronousStrategy(), 6)
        fda_cluster = run_rounds(blobs_workload, FDAStrategy(threshold=0.0, variant="exact"), 6)
        assert fda_cluster.synchronization_count == sync_cluster.synchronization_count

    def test_communication_differs_only_by_state_traffic(self, blobs_workload):
        sync_cluster = run_rounds(blobs_workload, SynchronousStrategy(), 5)
        fda_cluster = run_rounds(blobs_workload, FDAStrategy(threshold=0.0, variant="exact"), 5)
        model_bytes_sync = sync_cluster.tracker.bytes_for("model-sync")
        model_bytes_fda = fda_cluster.tracker.bytes_for("model-sync")
        assert model_bytes_fda == model_bytes_sync
        assert fda_cluster.tracker.bytes_for("fda-state") > 0


class TestLocalSgdTauOneIsSynchronous:
    def test_parameter_trajectories_identical(self, blobs_workload):
        sync_cluster = run_rounds(blobs_workload, SynchronousStrategy(), 8)
        local_cluster = run_rounds(blobs_workload, LocalSGDStrategy(tau=1), 8)
        np.testing.assert_allclose(
            sync_cluster.average_parameters(), local_cluster.average_parameters(), atol=1e-12
        )

    def test_communication_identical(self, blobs_workload):
        sync_cluster = run_rounds(blobs_workload, SynchronousStrategy(), 5)
        local_cluster = run_rounds(blobs_workload, LocalSGDStrategy(tau=1), 5)
        assert sync_cluster.total_bytes == local_cluster.total_bytes


class TestFedAvgEqualsClientAverage:
    def test_one_round_average(self, blobs_workload):
        # Run FedAvg for one round.
        fed_cluster, _ = build_cluster(blobs_workload)
        fed_strategy = FedOptStrategy(FedAvg(), local_epochs=1).attach(fed_cluster)
        fed_strategy.run_round()

        # Replay the same local epochs manually on a fresh, identical cluster.
        manual_cluster, _ = build_cluster(blobs_workload)
        manual_cluster.broadcast_parameters(manual_cluster.workers[0].get_parameters())
        for worker in manual_cluster.workers:
            worker.local_epoch()
        manual_average = np.mean(
            np.stack([w.get_parameters() for w in manual_cluster.workers]), axis=0
        )
        np.testing.assert_allclose(
            fed_cluster.average_parameters(), manual_average, atol=1e-12
        )

    def test_workers_hold_the_average_after_the_round(self, blobs_workload):
        cluster, _ = build_cluster(blobs_workload)
        FedOptStrategy(FedAvg(), local_epochs=1).attach(cluster).run_round()
        average = cluster.average_parameters()
        for worker in cluster.workers:
            np.testing.assert_allclose(worker.get_parameters(), average, atol=1e-12)


class TestSeedIsolation:
    def test_different_strategies_see_identical_initial_models(self, blobs_workload):
        sync_cluster, _ = build_cluster(blobs_workload)
        fda_cluster, _ = build_cluster(blobs_workload)
        np.testing.assert_array_equal(
            sync_cluster.workers[0].get_parameters(), fda_cluster.workers[0].get_parameters()
        )

    def test_different_workers_sample_different_batches(self, blobs_workload):
        cluster, _ = build_cluster(blobs_workload)
        cluster.broadcast_parameters(cluster.workers[0].get_parameters())
        cluster.step_all()
        parameters = [worker.get_parameters() for worker in cluster.workers]
        distinct = {tuple(np.round(p[:5], 12)) for p in parameters}
        assert len(distinct) > 1
