"""Tests for loss functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ShapeError
from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_has_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[10.0, -10.0, -10.0]])
        assert loss.value(logits, np.array([0])) < 1e-6

    def test_uniform_prediction_is_log_num_classes(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((4, 5))
        assert loss.value(logits, np.array([0, 1, 2, 3])) == pytest.approx(np.log(5))

    def test_gradient_matches_softmax_minus_onehot(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[1.0, 2.0, 0.5], [0.0, 0.0, 0.0]])
        targets = np.array([1, 2])
        _, grad = loss.gradient(logits, targets)
        exp = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs = exp / exp.sum(axis=1, keepdims=True)
        onehot = np.zeros_like(logits)
        onehot[np.arange(2), targets] = 1.0
        np.testing.assert_allclose(grad, (probs - onehot) / 2.0)

    def test_gradient_matches_numerical(self):
        loss = SoftmaxCrossEntropy()
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(3, 4))
        targets = np.array([0, 3, 2])
        _, grad = loss.gradient(logits, targets)
        epsilon = 1e-6
        numerical = np.zeros_like(logits)
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                perturbed = logits.copy()
                perturbed[i, j] += epsilon
                plus = loss.value(perturbed, targets)
                perturbed[i, j] -= 2 * epsilon
                minus = loss.value(perturbed, targets)
                numerical[i, j] = (plus - minus) / (2 * epsilon)
        np.testing.assert_allclose(grad, numerical, rtol=1e-5, atol=1e-8)

    def test_label_smoothing_increases_loss_of_confident_prediction(self):
        plain = SoftmaxCrossEntropy()
        smoothed = SoftmaxCrossEntropy(label_smoothing=0.1)
        logits = np.array([[15.0, -15.0]])
        targets = np.array([0])
        assert smoothed.value(logits, targets) > plain.value(logits, targets)

    def test_value_and_gradient_agree(self):
        loss = SoftmaxCrossEntropy(label_smoothing=0.05)
        logits = np.random.default_rng(1).normal(size=(5, 3))
        targets = np.array([0, 1, 2, 1, 0])
        value_only = loss.value(logits, targets)
        value_from_gradient, _ = loss.gradient(logits, targets)
        assert value_only == pytest.approx(value_from_gradient)

    def test_rejects_non_2d_outputs(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ShapeError):
            loss.value(np.zeros(3), np.array([0]))

    def test_rejects_invalid_smoothing(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy(label_smoothing=1.0)

    @settings(max_examples=25, deadline=None)
    @given(
        arrays(
            np.float64,
            (4, 6),
            elements=st.floats(min_value=-30, max_value=30, allow_nan=False),
        )
    )
    def test_loss_is_always_non_negative(self, logits):
        loss = SoftmaxCrossEntropy()
        targets = np.arange(4) % 6
        assert loss.value(logits, targets) >= 0.0


class TestMeanSquaredError:
    def test_zero_for_equal_arrays(self):
        loss = MeanSquaredError()
        x = np.random.default_rng(0).normal(size=(3, 2))
        assert loss.value(x, x) == 0.0

    def test_known_value(self):
        loss = MeanSquaredError()
        assert loss.value(np.array([1.0, 3.0]), np.array([0.0, 1.0])) == pytest.approx(2.5)

    def test_gradient_matches_numerical(self):
        loss = MeanSquaredError()
        rng = np.random.default_rng(2)
        outputs = rng.normal(size=(4, 3))
        targets = rng.normal(size=(4, 3))
        _, grad = loss.gradient(outputs, targets)
        np.testing.assert_allclose(grad, 2.0 * (outputs - targets) / outputs.size)

    def test_shape_mismatch_raises(self):
        loss = MeanSquaredError()
        with pytest.raises(ShapeError):
            loss.value(np.zeros((2, 2)), np.zeros((2, 3)))
