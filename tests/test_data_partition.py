"""Tests for the federated data partitioners (IID and the paper's Non-IID schemes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import (
    dirichlet_partition,
    iid_partition,
    noniid_label_partition,
    noniid_sorted_fraction_partition,
    partition_dataset,
    partition_statistics,
)
from repro.data.synthetic import synthetic_features
from repro.exceptions import DataError


def make_labels(n=200, classes=10, seed=0):
    return np.random.default_rng(seed).integers(0, classes, size=n)


def assert_valid_partition(parts, total):
    """Every index appears in exactly one partition."""
    combined = np.concatenate(parts)
    assert combined.shape[0] == total
    assert set(combined.tolist()) == set(range(total))


class TestIidPartition:
    def test_covers_all_indices(self):
        labels = make_labels(103)
        parts = iid_partition(labels, 5, seed=0)
        assert_valid_partition(parts, 103)

    def test_sizes_balanced(self):
        parts = iid_partition(make_labels(100), 4, seed=0)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_label_distributions_similar(self):
        labels = make_labels(2000, classes=4)
        parts = iid_partition(labels, 4, seed=0)
        fractions = [np.bincount(labels[p], minlength=4) / len(p) for p in parts]
        for fraction in fractions:
            np.testing.assert_allclose(fraction, 0.25, atol=0.08)

    def test_too_few_samples(self):
        with pytest.raises(DataError):
            iid_partition(make_labels(3), 5)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=10, max_value=300),
        workers=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_partition_is_always_exact_cover(self, n, workers, seed):
        if n < workers:
            return
        labels = make_labels(n, seed=seed)
        parts = iid_partition(labels, workers, seed=seed)
        assert_valid_partition(parts, n)


class TestNonIidFraction:
    def test_covers_all_indices(self):
        labels = make_labels(240)
        parts = noniid_sorted_fraction_partition(labels, 6, 0.6, seed=0)
        assert_valid_partition(parts, 240)

    def test_zero_fraction_is_iid_like(self):
        labels = make_labels(300, classes=3)
        parts = noniid_sorted_fraction_partition(labels, 3, 0.0, seed=0)
        stats_zero = partition_statistics(
            partition_dataset(
                synthetic_features(300, num_classes=3, seed=0), 3, "noniid-fraction",
                seed=0, fraction=0.0,
            )
        )
        assert_valid_partition(parts, 300)
        assert stats_zero["heterogeneity"] < 0.25

    def test_higher_fraction_increases_heterogeneity(self):
        data = synthetic_features(600, num_classes=6, seed=0)
        low = partition_statistics(
            partition_dataset(data, 6, "noniid-fraction", seed=0, fraction=0.1)
        )
        high = partition_statistics(
            partition_dataset(data, 6, "noniid-fraction", seed=0, fraction=0.9)
        )
        assert high["heterogeneity"] > low["heterogeneity"]

    def test_invalid_fraction(self):
        with pytest.raises(DataError):
            noniid_sorted_fraction_partition(make_labels(), 4, 1.5)


class TestNonIidLabel:
    def test_label_concentrated_on_holders(self):
        labels = make_labels(400, classes=5)
        parts = noniid_label_partition(labels, 8, label=2, num_holders=2, seed=0)
        assert_valid_partition(parts, 400)
        holders_with_label = [
            index for index, part in enumerate(parts) if np.any(labels[part] == 2)
        ]
        assert len(holders_with_label) <= 2

    def test_default_holder_count(self):
        labels = make_labels(300, classes=4)
        parts = noniid_label_partition(labels, 20, label=0, seed=0)
        assert_valid_partition(parts, 300)

    def test_missing_label_rejected(self):
        labels = np.zeros(50, dtype=int)
        with pytest.raises(DataError):
            noniid_label_partition(labels, 5, label=3)

    def test_invalid_holders(self):
        labels = make_labels(100, classes=3)
        with pytest.raises(DataError):
            noniid_label_partition(labels, 4, label=0, num_holders=9)


class TestDirichlet:
    def test_covers_all_indices(self):
        labels = make_labels(500, classes=10)
        parts = dirichlet_partition(labels, 7, alpha=0.5, seed=0)
        assert_valid_partition(parts, 500)

    def test_every_worker_nonempty(self):
        labels = make_labels(60, classes=3)
        parts = dirichlet_partition(labels, 10, alpha=0.1, seed=0)
        assert all(len(p) >= 1 for p in parts)

    def test_small_alpha_more_heterogeneous(self):
        data = synthetic_features(800, num_classes=8, seed=0)
        concentrated = partition_statistics(
            partition_dataset(data, 8, "dirichlet", seed=0, alpha=0.05)
        )
        spread = partition_statistics(
            partition_dataset(data, 8, "dirichlet", seed=0, alpha=100.0)
        )
        assert concentrated["heterogeneity"] > spread["heterogeneity"]

    def test_invalid_alpha(self):
        with pytest.raises(DataError):
            dirichlet_partition(make_labels(), 4, alpha=0.0)


class TestPartitionDataset:
    def test_returns_one_dataset_per_worker(self):
        data = synthetic_features(100, num_classes=4, seed=0)
        parts = partition_dataset(data, 5, "iid", seed=0)
        assert len(parts) == 5
        assert sum(len(p) for p in parts) == 100

    def test_unknown_scheme(self):
        data = synthetic_features(50, num_classes=4, seed=0)
        with pytest.raises(DataError):
            partition_dataset(data, 2, "zipf")

    def test_statistics_fields(self):
        data = synthetic_features(100, num_classes=4, seed=0)
        stats = partition_statistics(partition_dataset(data, 4, "iid", seed=0))
        assert stats["num_workers"] == 4
        assert stats["min_size"] > 0
        assert 0.0 <= stats["heterogeneity"] <= 1.0

    def test_statistics_requires_partitions(self):
        with pytest.raises(DataError):
            partition_statistics([])
