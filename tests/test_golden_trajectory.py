"""Golden-trajectory equivalence: the zero-copy path reproduces the seed path.

The parameter-plane refactor replaced the seed implementation's
gather/copy/scatter hot path (``get_parameters`` → ``optimizer.step`` →
``set_parameters``) with in-place updates on contiguous flat storage.  The
refactor's contract is *bit-identical* training: these tests run the same
workload down both paths (``Worker(inplace=True)`` vs the retained
``inplace=False`` legacy path) and assert exact equality of every worker's
parameters, every per-step variance estimate, and the communication byte
accounting.  A second group proves the optimizer-level equivalence directly:
``step_inplace`` must produce the same bits as ``step`` for every built-in
optimizer configuration.
"""

import numpy as np
import pytest

from repro.core.fda import FDATrainer
from repro.core.monitor import make_monitor
from repro.data.datasets import Dataset
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.worker import Worker
from repro.nn.architectures import mlp
from repro.optim.adam import Adam, AdamW
from repro.optim.sgd import SGD


def make_optimizer(kind):
    if kind == "sgd":
        return SGD(0.05)
    if kind == "sgd-nesterov":
        return SGD(0.05, momentum=0.9, nesterov=True, weight_decay=1e-3)
    if kind == "adam":
        return Adam(0.01)
    if kind == "adamw":
        return AdamW(0.01, weight_decay=0.01)
    raise ValueError(kind)


def build_trainer(variant, optimizer_kind, inplace, num_workers=4, **cluster_kwargs):
    rng = np.random.default_rng(7)
    workers = []
    for worker_id in range(num_workers):
        x = rng.normal(size=(40, 6))
        y = rng.integers(0, 3, size=40)
        model = mlp(6, 3, hidden_units=(10,), seed=11)
        workers.append(
            Worker(
                worker_id,
                model,
                Dataset(x, y, 3),
                make_optimizer(optimizer_kind),
                batch_size=8,
                seed=worker_id,
                inplace=inplace,
            )
        )
    cluster = SimulatedCluster(workers, **cluster_kwargs)
    monitor = make_monitor(variant, cluster.model_dimension, seed=3)
    return FDATrainer(cluster, monitor, threshold=0.5)


class TestGoldenTrajectory:
    @pytest.mark.parametrize("variant", ["sketch", "linear"])
    @pytest.mark.parametrize("optimizer_kind", ["sgd-nesterov", "adam"])
    def test_inplace_path_is_bit_identical_to_copy_path(self, variant, optimizer_kind):
        steps = 25
        legacy = build_trainer(variant, optimizer_kind, inplace=False)
        modern = build_trainer(variant, optimizer_kind, inplace=True)

        legacy_results = legacy.run_steps(steps)
        modern_results = modern.run_steps(steps)

        # Bit-identical parameters on every worker.
        np.testing.assert_array_equal(
            legacy.cluster.parameter_matrix, modern.cluster.parameter_matrix
        )
        # Bit-identical variance estimates at every step.
        np.testing.assert_array_equal(
            np.array([r.variance_estimate for r in legacy_results]),
            np.array([r.variance_estimate for r in modern_results]),
        )
        # Identical protocol decisions and byte accounting.
        assert [r.synchronized for r in legacy_results] == [
            r.synchronized for r in modern_results
        ]
        assert legacy.cluster.total_bytes == modern.cluster.total_bytes
        assert legacy.synchronization_count == modern.synchronization_count

    def test_exact_variant_matches_too(self):
        legacy = build_trainer("exact", "sgd", inplace=False)
        modern = build_trainer("exact", "sgd", inplace=True)
        legacy.run_steps(15)
        modern.run_steps(15)
        np.testing.assert_array_equal(
            legacy.cluster.parameter_matrix, modern.cluster.parameter_matrix
        )
        assert legacy.cluster.total_bytes == modern.cluster.total_bytes


class TestGoldenMaskedTrajectory:
    """Frozen fixture for a ``dropout_rate=0.25`` FDA run on *both* engines.

    Freezes the masked-execution semantics — which workers participate each
    step (the timeline's mask stream), which steps synchronize, the byte
    total, and the per-worker step counts — as literal constants, so a future
    refactor that silently changes RNG consumption, mask threading, or the
    sync bookkeeping under partial participation fails loudly here.  The
    frozen integers are platform-exact; float probes use a loose tolerance
    (the variance estimates stay ≥ 0.04 away from Θ, so BLAS differences
    cannot flip a frozen decision).
    """

    #: Per-step participating-worker counts from Timeline(6, dropout=0.25, seed=2026).
    GOLDEN_ACTIVE = [5, 5, 6, 4, 5, 5, 6, 4, 6, 5, 5, 5, 5, 4, 5, 5, 4, 5, 5, 3,
                     5, 6, 5, 5, 3, 4, 5, 3, 4, 4]
    #: 1-based steps whose variance estimate exceeded Θ=0.5.
    GOLDEN_SYNC_STEPS = [12, 22]
    GOLDEN_TOTAL_BYTES = 20640
    GOLDEN_STEPS_PERFORMED = [23, 24, 22, 25, 25, 22]
    GOLDEN_FIRST_LOSS = 1.2080946490946594
    GOLDEN_LAST_ESTIMATE = 0.32483190113175

    @pytest.mark.parametrize("execution", ["sequential", "batched"])
    def test_masked_fda_run_matches_frozen_observables(self, execution):
        from helpers.parity import make_cluster

        cluster = make_cluster(
            execution,
            num_workers=6,
            dropout_rate=0.25,
            timeline_seed=2026,
            optimizer_factory=lambda worker_id: SGD(
                0.05, momentum=0.9, nesterov=True, weight_decay=1e-3
            ),
        )
        trainer = FDATrainer(
            cluster, make_monitor("linear", cluster.model_dimension, seed=3), 0.5
        )
        results = trainer.run_steps(30)
        assert [r.active_workers for r in results] == self.GOLDEN_ACTIVE
        assert [r.step for r in results if r.synchronized] == self.GOLDEN_SYNC_STEPS
        assert cluster.total_bytes == self.GOLDEN_TOTAL_BYTES
        assert [w.steps_performed for w in cluster.workers] == self.GOLDEN_STEPS_PERFORMED
        np.testing.assert_allclose(
            results[0].mean_loss, self.GOLDEN_FIRST_LOSS, rtol=1e-6
        )
        np.testing.assert_allclose(
            results[-1].variance_estimate, self.GOLDEN_LAST_ESTIMATE, rtol=1e-3
        )


class TestFabricDefaultEquivalence:
    """The topology-aware fabric must not perturb the paper's default setting.

    With the defaults — star topology, naive cost model, no network model, an
    unperturbed timeline — byte counts and parameter trajectories must be
    bit-identical to the pre-fabric implementation, whose per-step accounting
    is reproduced here in closed form.
    """

    def test_explicit_star_fabric_matches_implicit_default(self):
        steps = 25
        implicit = build_trainer("linear", "adam", inplace=True)
        explicit = build_trainer(
            "linear", "adam", inplace=True, topology="star", network="none"
        )
        implicit_results = implicit.run_steps(steps)
        explicit_results = explicit.run_steps(steps)
        np.testing.assert_array_equal(
            implicit.cluster.parameter_matrix, explicit.cluster.parameter_matrix
        )
        assert implicit.cluster.total_bytes == explicit.cluster.total_bytes
        assert [r.communication_bytes for r in implicit_results] == [
            r.communication_bytes for r in explicit_results
        ]

    @pytest.mark.parametrize("variant", ["sketch", "linear", "exact"])
    def test_default_byte_counts_match_the_seed_closed_form(self, variant):
        steps = 20
        trainer = build_trainer(variant, "sgd", inplace=True)
        trainer.run_steps(steps)
        cluster = trainer.cluster
        d, K = cluster.model_dimension, cluster.num_workers
        # Pre-refactor accounting: one state AllReduce per step plus one
        # full-model AllReduce per triggered synchronization (the mlp has no
        # buffers, so each sync is exactly one collective), priced at the
        # float64 plane's 8 B/element by the itemsize-accurate default model.
        state_elements = trainer.state_elements_per_step
        expected_state = steps * state_elements * 8 * K
        expected_model = trainer.synchronization_count * d * 8 * K
        assert cluster.tracker.bytes_for("fda-state") == expected_state
        assert cluster.tracker.bytes_for("model-sync") == expected_model
        assert cluster.total_bytes == expected_state + expected_model

    def test_default_timeline_is_a_pure_observer(self):
        # The clock ticks, but consumes no randomness and charges no traffic.
        steps = 15
        trainer = build_trainer("linear", "adam", inplace=True)
        results = trainer.run_steps(steps)
        assert trainer.cluster.virtual_time == pytest.approx(float(steps))
        assert trainer.cluster.timeline.comm_seconds == 0.0
        assert results[-1].virtual_time == pytest.approx(float(steps))


class TestOptimizerInplaceEquivalence:
    @pytest.mark.parametrize(
        "kind", ["sgd", "sgd-nesterov", "adam", "adamw"]
    )
    def test_step_inplace_matches_step_bitwise(self, kind):
        rng = np.random.default_rng(0)
        start = rng.normal(size=257)
        copy_opt = make_optimizer(kind)
        inplace_opt = make_optimizer(kind)

        params_copy = start.copy()
        params_inplace = start.copy()
        gradient_rng = np.random.default_rng(1)
        for _ in range(50):
            grads = gradient_rng.normal(size=start.shape)
            params_copy = copy_opt.step(params_copy, grads)
            returned = inplace_opt.step_inplace(params_inplace, grads)
            assert returned is params_inplace  # updates land in the given array
            np.testing.assert_array_equal(params_copy, params_inplace)

    def test_step_inplace_does_not_mutate_gradients(self):
        for kind in ("sgd-nesterov", "adamw"):
            optimizer = make_optimizer(kind)
            params = np.ones(16)
            grads = np.full(16, 0.5)
            grads_before = grads.copy()
            optimizer.step_inplace(params, grads)
            np.testing.assert_array_equal(grads, grads_before)

    def test_step_inplace_rejects_non_float_params(self):
        # An asarray copy would silently swallow the in-place update.  Both
        # plane dtypes are accepted; everything else (lists, integer arrays,
        # mixed param/grad dtypes) must raise instead of silently converting.
        from repro.exceptions import ShapeError

        params32 = np.ones(4, dtype=np.float32)
        SGD(0.1).step_inplace(params32, np.ones(4, dtype=np.float32))
        assert params32.dtype == np.float32

        with pytest.raises(ShapeError):
            SGD(0.1).step_inplace([1.0, 2.0], np.ones(2))
        with pytest.raises(ShapeError):
            SGD(0.1).step_inplace(np.ones(4, dtype=np.int64), np.ones(4))
        with pytest.raises(ShapeError):
            SGD(0.1).step_inplace(np.ones(4, dtype=np.float32), np.ones(4))

    def test_step_inplace_revalidates_on_gradient_shape_change(self):
        from repro.exceptions import ShapeError

        optimizer = Adam(0.01)
        params = np.zeros(4)
        optimizer.step_inplace(params, np.ones(4))
        with pytest.raises(ShapeError):
            optimizer.step_inplace(params, np.ones(1))  # would broadcast silently

    def test_momentum_sgd_converges_inplace(self):
        optimizer = SGD(0.05, momentum=0.9)
        params = np.array([10.0, -4.0])
        target = np.full_like(params, 3.0)
        for _ in range(300):
            optimizer.step_inplace(params, 2.0 * (params - target))
        np.testing.assert_allclose(params, 3.0, atol=1e-3)


class TestGoldenPopulationTrajectory:
    """Frozen fixture for a weighted-aggregation FDA run over N=10⁵ clients.

    The population plane multiplexes 100 000 logical clients onto a 16-slot
    cohort with data-size aggregation weights: each round draws a fresh seeded
    cohort, binds it onto the batched (A, d) path, and FDA's triggered syncs
    weight the model average by shard size.  This fixture freezes the full
    protocol surface of that run — which rounds synchronize, the byte ledger
    split (per-step FDA state vs triggered weighted model syncs), how many
    distinct clients became stateful, the per-client step-count multiset (as
    a sha256 digest — 479 entries are too many for literals), and the store's
    resident high-water mark — so refactors of cohort sampling, the
    directory's virtual-shard streams, snapshot overlay, or the weighted
    collectives fail loudly here.  Integer observables are platform-exact;
    sync decisions were verified stable under a ±5 % threshold sweep, far
    beyond BLAS reassociation noise, and the loss probe uses a loose rtol.
    """

    GOLDEN_SYNC_ROUNDS = [1, 29]
    GOLDEN_TOTAL_BYTES = 55040
    GOLDEN_STATE_BYTES = 7680    # 30 rounds × 16 workers × 2 els × 8 B
    GOLDEN_MODEL_BYTES = 47360   # 2 weighted syncs × 16 workers × d × 8 B
    #: 480 cohort slots drew 479 distinct clients (one repeat → steps == 2).
    GOLDEN_STATEFUL_CLIENTS = 479
    GOLDEN_TOTAL_CLIENT_STEPS = 480
    GOLDEN_MAX_CLIENT_STEPS = 2
    #: sha256 over "id:steps" pairs in ascending client order.
    GOLDEN_STEPS_DIGEST = (
        "36f0bd2840e75e9e5d443aa0b0c72c95ed193c8f66229f76b84ef346477455e4"
    )
    GOLDEN_FIRST_LOSS = 1.2066481507864428

    def test_weighted_population_fda_matches_frozen_observables(self):
        import hashlib

        from helpers.parity import make_cluster
        from repro.data.synthetic import gaussian_blobs
        from repro.population import ClientPopulation, PopulationConfig
        from repro.strategies.fda_strategy import FDAStrategy

        train = gaussian_blobs(600, feature_dim=6, num_classes=3, seed=0)
        config = PopulationConfig(
            num_clients=100_000,
            cohort_size=16,
            weighting="data-size",
            min_client_samples=24,
            max_client_samples=48,
        )
        cluster = make_cluster("batched", num_workers=16)
        strategy = FDAStrategy(threshold=0.01).attach(cluster)
        population = ClientPopulation(config, train_dataset=train, seed=2026)
        population.attach(cluster, strategy)

        results = [population.run_round() for _ in range(30)]

        assert [
            i + 1 for i, r in enumerate(results) if r.synchronized
        ] == self.GOLDEN_SYNC_ROUNDS
        assert cluster.tracker.bytes_for("fda-state") == self.GOLDEN_STATE_BYTES
        assert cluster.tracker.bytes_for("model-sync") == self.GOLDEN_MODEL_BYTES
        assert cluster.total_bytes == self.GOLDEN_TOTAL_BYTES
        # Data-size weights were in force for the triggered syncs.
        assert cluster.aggregation_weights is not None

        steps = population.client_steps
        assert population.store.stateful_count == self.GOLDEN_STATEFUL_CLIENTS
        assert sum(steps.values()) == self.GOLDEN_TOTAL_CLIENT_STEPS
        assert max(steps.values()) == self.GOLDEN_MAX_CLIENT_STEPS
        digest = hashlib.sha256(
            ",".join(f"{cid}:{steps[cid]}" for cid in sorted(steps)).encode()
        ).hexdigest()
        assert digest == self.GOLDEN_STEPS_DIGEST
        # Resident state is bounded by the cohort (2·C), never by N.
        assert population.peak_resident_clients <= 2 * config.cohort_size
        np.testing.assert_allclose(
            results[0].mean_loss, self.GOLDEN_FIRST_LOSS, rtol=1e-6
        )
