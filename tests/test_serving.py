"""Property tests of the serving plane's three load-bearing contracts.

* **Arrival reproducibility** — Poisson inter-arrival draws are a pure
  function of ``(seed, worker, rate)``: replaying a process yields the
  identical sequence, and distinct seeds yield distinct sequences.
* **Queue conservation** — under *arbitrary* interleavings of offers and
  pops, every capacity and every policy, the ledger invariant
  ``offered == aggregated + dropped + shed + in_flight`` holds at every
  intermediate instant (Hypothesis drives the interleavings).
* **Percentile cross-check** — the P² streaming estimator stays within its
  documented rank-error bound of the exact sorted ledger: the empirical CDF
  evaluated at the P² estimate is within ``P2_RANK_ERROR_BOUND`` of the
  target quantile for n >= 100 observations.

Deterministic unit tests for the staleness rules and the individual queue
policies ride along.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, ExperimentError
from repro.serving.aggregation import STALENESS_RULES, staleness_weight, staleness_weights
from repro.serving.arrivals import (
    DeterministicArrivals,
    PoissonArrivals,
    TraceArrivals,
    build_arrival_process,
    write_arrival_trace,
)
from repro.serving.config import ServingConfig
from repro.serving.metrics import (
    P2_RANK_ERROR_BOUND,
    LatencyTracker,
    P2Quantile,
    PercentileLedger,
)
from repro.serving.queueing import IngressQueue, PendingUpdate

pytestmark = pytest.mark.serving

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _update(seq: int, worker: int = 0, time: float = 0.0) -> PendingUpdate:
    return PendingUpdate(worker_id=worker, enqueue_time=time, version=0, seq=seq)


class TestArrivalReproducibility:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        rate=st.floats(min_value=0.05, max_value=50.0),
        worker=st.integers(min_value=0, max_value=3),
        draws=st.integers(min_value=1, max_value=50),
    )
    @SETTINGS
    def test_poisson_sequence_is_a_pure_function_of_seed(self, seed, rate, worker, draws):
        first = PoissonArrivals(rate, num_workers=4, seed=seed)
        second = PoissonArrivals(rate, num_workers=4, seed=seed)
        times_a, times_b = [], []
        now_a = now_b = 0.0
        for _ in range(draws):
            now_a = first.next_arrival(worker, now_a)
            now_b = second.next_arrival(worker, now_b)
            times_a.append(now_a)
            times_b.append(now_b)
        assert times_a == times_b
        assert all(t > 0 for t in times_a)
        assert times_a == sorted(times_a)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @SETTINGS
    def test_distinct_seeds_give_distinct_streams(self, seed):
        a = PoissonArrivals(1.0, num_workers=1, seed=seed)
        b = PoissonArrivals(1.0, num_workers=1, seed=seed + 1)
        draws_a = [a.next_arrival(0, 0.0) for _ in range(8)]
        draws_b = [b.next_arrival(0, 0.0) for _ in range(8)]
        assert draws_a != draws_b

    def test_workers_have_independent_streams(self):
        process = PoissonArrivals(1.0, num_workers=2, seed=0)
        a = [process.next_arrival(0, 0.0) for _ in range(8)]
        b = [process.next_arrival(1, 0.0) for _ in range(8)]
        assert a != b
        # Re-created process replays both worker streams identically.
        replay = PoissonArrivals(1.0, num_workers=2, seed=0)
        assert [replay.next_arrival(0, 0.0) for _ in range(8)] == a
        assert [replay.next_arrival(1, 0.0) for _ in range(8)] == b

    def test_deterministic_intervals(self):
        process = DeterministicArrivals(4.0)
        assert process.next_arrival(0, 0.0) == pytest.approx(0.25)
        assert process.next_arrival(0, 1.0) == pytest.approx(1.25)

    def test_trace_replays_in_order_and_exhausts(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_arrival_trace(str(path), [(0, 0.5), (0, 0.1), (1, 2.0)])
        trace = TraceArrivals.from_jsonl(str(path))
        assert trace.next_arrival(0, 0.0) == pytest.approx(0.1)
        assert trace.next_arrival(0, 0.2) == pytest.approx(0.5)
        assert trace.next_arrival(0, 1.0) is None
        assert trace.next_arrival(1, 0.0) == pytest.approx(2.0)
        assert trace.next_arrival(2, 0.0) is None

    def test_trace_late_delivery_stays_after_now(self):
        trace = TraceArrivals({0: [1.0]})
        delivered = trace.next_arrival(0, 5.0)
        assert delivered > 5.0

    def test_build_arrival_process_dispatch(self):
        assert build_arrival_process(ServingConfig(arrival="closed"), 4) is None
        assert isinstance(
            build_arrival_process(ServingConfig(arrival="poisson"), 4), PoissonArrivals
        )
        assert isinstance(
            build_arrival_process(ServingConfig(arrival="deterministic"), 4),
            DeterministicArrivals,
        )


class TestQueueConservation:
    @given(
        capacity=st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
        policy=st.sampled_from(["drop", "block", "shed"]),
        # True = offer one update, False = pop (if non-empty).
        ops=st.lists(st.booleans(), min_size=1, max_size=200),
    )
    @SETTINGS
    def test_conservation_under_arbitrary_interleavings(self, capacity, policy, ops):
        queue = IngressQueue(capacity, policy)
        seq = 0
        now = 0.0
        for is_offer in ops:
            now += 1.0
            if is_offer:
                queue.offer(_update(seq), now)
                seq += 1
            elif queue:
                queue.pop(now)
            # The invariant holds at EVERY intermediate instant.
            assert queue.conservation_holds()
            if capacity is not None:
                assert queue.depth <= capacity

    @given(
        capacity=st.integers(min_value=1, max_value=4),
        offers=st.integers(min_value=1, max_value=50),
    )
    @SETTINGS
    def test_draining_accounts_for_every_offer(self, capacity, offers):
        for policy in ("drop", "block", "shed"):
            queue = IngressQueue(capacity, policy)
            for seq in range(offers):
                queue.offer(_update(seq), float(seq))
            while queue:
                queue.pop(99.0)
            # Block keeps everything (anteroom drains through the queue);
            # after a full drain under drop/shed nothing is in flight.
            if policy == "block":
                while queue:
                    queue.pop(99.0)
            assert queue.conservation_holds()
            if policy != "block":
                assert queue.in_flight == 0
                assert queue.offered == queue.dequeued + queue.lost

    def test_drop_refuses_newcomer(self):
        queue = IngressQueue(1, "drop")
        assert queue.offer(_update(0), 0.0) == "enqueued"
        assert queue.offer(_update(1), 0.1) == "dropped"
        assert queue.dropped == 1
        assert queue.pop(0.2).seq == 0

    def test_block_parks_and_promotes_fifo(self):
        queue = IngressQueue(1, "block")
        queue.offer(_update(0, time=0.0), 0.0)
        assert queue.offer(_update(1, time=0.1), 0.1) == "blocked"
        assert queue.offer(_update(2, time=0.2), 0.2) == "blocked"
        assert queue.blocked == 2
        assert queue.pop(0.3).seq == 0
        # Oldest blocked update was promoted, with its original timestamp.
        promoted = queue.pop(0.4)
        assert promoted.seq == 1
        assert promoted.enqueue_time == pytest.approx(0.1)

    def test_shed_evicts_oldest(self):
        queue = IngressQueue(2, "shed")
        for seq in range(3):
            queue.offer(_update(seq), float(seq))
        assert queue.shed == 1
        assert [queue.pop(9.0).seq for _ in range(2)] == [1, 2]

    def test_empty_pop_raises(self):
        with pytest.raises(ExperimentError):
            IngressQueue().pop(0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IngressQueue(capacity=0)
        with pytest.raises(ConfigurationError):
            IngressQueue(policy="lifo")


class TestPercentileCrossCheck:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=100, max_value=3000),
        distribution=st.sampled_from(["exponential", "lognormal", "uniform"]),
    )
    @SETTINGS
    def test_p2_estimate_within_documented_rank_bound(self, seed, n, distribution):
        rng = np.random.default_rng(seed)
        if distribution == "exponential":
            samples = rng.exponential(2.0, size=n)
        elif distribution == "lognormal":
            samples = rng.lognormal(0.0, 1.0, size=n)
        else:
            samples = rng.uniform(0.0, 10.0, size=n)
        tracker = LatencyTracker()
        for value in samples:
            tracker.record(float(value))
        for q, estimator in tracker.estimators.items():
            rank = tracker.ledger.cdf_at(estimator.value())
            assert abs(rank - q) <= P2_RANK_ERROR_BOUND, (
                f"P²({q}) estimate ranks at {rank:.3f}, "
                f"outside the documented ±{P2_RANK_ERROR_BOUND} bound"
            )

    def test_exact_below_five_observations(self):
        estimator = P2Quantile(0.5)
        for value in (3.0, 1.0, 2.0):
            estimator.add(value)
        assert estimator.value() == pytest.approx(np.percentile([3.0, 1.0, 2.0], 50))

    def test_ledger_percentiles_are_exact(self):
        ledger = PercentileLedger()
        for value in range(1, 101):
            ledger.record(float(value))
        assert ledger.percentile(0.5) == pytest.approx(np.percentile(range(1, 101), 50))
        assert ledger.percentile(0.99) == pytest.approx(np.percentile(range(1, 101), 99))

    def test_summary_reports_exact_and_estimated(self):
        tracker = LatencyTracker()
        for value in np.linspace(0.0, 1.0, 500):
            tracker.record(float(value))
        summary = tracker.summary()
        for key in ("p50", "p95", "p99", "p50_est", "p95_est", "p99_est", "mean", "max"):
            assert key in summary
        assert summary["count"] == 500
        assert summary["p50"] == pytest.approx(0.5, abs=0.01)


class TestStalenessRules:
    def test_rule_values(self):
        assert staleness_weight("uniform", 7) == 1.0
        assert staleness_weight("staleness-weighted", 0) == 1.0
        assert staleness_weight("staleness-weighted", 3) == pytest.approx(0.25)
        assert staleness_weight("max-staleness", 4, max_staleness=4) == 1.0
        assert staleness_weight("max-staleness", 5, max_staleness=4) == 0.0
        assert staleness_weight("polynomial", 3, poly_alpha=0.5) == pytest.approx(0.5)

    def test_weights_vectorized_and_monotone(self):
        for rule in STALENESS_RULES:
            weights = staleness_weights(rule, range(6))
            assert weights.shape == (6,)
            # Staler never weighs more than fresher, for every rule.
            assert (np.diff(weights) <= 1e-12).all()

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            staleness_weight("exponential", 1)
        with pytest.raises(ConfigurationError):
            staleness_weight("uniform", -1)


class TestServingConfigValidation:
    def test_defaults_are_valid(self):
        config = ServingConfig()
        assert config.arrival == "poisson"
        assert "poisson" in config.describe()

    def test_closed_mode_requires_degenerate_knobs(self):
        ServingConfig(arrival="closed")  # valid
        with pytest.raises(ConfigurationError):
            ServingConfig(arrival="closed", service_seconds=0.5)
        with pytest.raises(ConfigurationError):
            ServingConfig(arrival="closed", queue_capacity=8)
        with pytest.raises(ConfigurationError):
            ServingConfig(arrival="closed", protocol="bsp")

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ServingConfig(arrival="warp")
        with pytest.raises(ConfigurationError):
            ServingConfig(arrival_rate=0.0)
        with pytest.raises(ConfigurationError):
            ServingConfig(arrival="trace")
        with pytest.raises(ConfigurationError):
            ServingConfig(queue_policy="random")
        with pytest.raises(ConfigurationError):
            ServingConfig(staleness_rule="linear-decay")
        with pytest.raises(ConfigurationError):
            ServingConfig(service_seconds=-1.0)
