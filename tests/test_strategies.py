"""Tests for the training strategies (Synchronous, Local-SGD, FedOpt, FDA, compression)."""

import numpy as np
import pytest

from repro.distributed.cluster import CATEGORY_MODEL, CATEGORY_STATE
from repro.exceptions import ConfigurationError, ExperimentError
from repro.experiments.setup import build_cluster
from repro.optim.server import FedAdam, FedAvg, FedAvgM
from repro.strategies.base import Strategy
from repro.strategies.compression import (
    CompressedSynchronousStrategy,
    CompressedSynchronizer,
    QuantizationCompressor,
    TopKCompressor,
)
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.fedopt import FedOptStrategy, fedadam_strategy, fedavgm_strategy
from repro.strategies.local_sgd import LocalSGDStrategy
from repro.strategies.synchronous import SynchronousStrategy


@pytest.fixture()
def cluster_and_test(blobs_workload):
    return build_cluster(blobs_workload)


class TestStrategyBase:
    def test_unattached_strategy_raises(self):
        with pytest.raises(ExperimentError):
            SynchronousStrategy().cluster

    def test_attach_broadcasts_initial_model(self, cluster_and_test):
        cluster, _ = cluster_and_test
        # Perturb one worker so the initial models differ.
        cluster.workers[1].set_parameters(cluster.workers[1].get_parameters() + 1.0)
        SynchronousStrategy().attach(cluster)
        reference = cluster.workers[0].get_parameters()
        for worker in cluster.workers:
            np.testing.assert_array_equal(worker.get_parameters(), reference)

    def test_run_steps_advances_at_least_requested(self, cluster_and_test):
        cluster, _ = cluster_and_test
        strategy = LocalSGDStrategy(tau=4).attach(cluster)
        strategy.run_steps(10)
        assert cluster.parallel_steps >= 10

    def test_run_steps_rejects_negative(self, cluster_and_test):
        cluster, _ = cluster_and_test
        strategy = SynchronousStrategy().attach(cluster)
        with pytest.raises(ConfigurationError):
            strategy.run_steps(-1)


class TestSynchronous:
    def test_syncs_every_step(self, cluster_and_test):
        cluster, _ = cluster_and_test
        strategy = SynchronousStrategy().attach(cluster)
        for _ in range(3):
            result = strategy.run_round()
            assert result.synchronized
            assert result.steps_advanced == 1
        assert cluster.synchronization_count == 3

    def test_variance_zero_after_each_round(self, cluster_and_test):
        cluster, _ = cluster_and_test
        strategy = SynchronousStrategy().attach(cluster)
        strategy.run_round()
        assert cluster.model_variance() == pytest.approx(0.0, abs=1e-18)


class TestLocalSGD:
    def test_fixed_tau_round_length(self, cluster_and_test):
        cluster, _ = cluster_and_test
        strategy = LocalSGDStrategy(tau=5).attach(cluster)
        result = strategy.run_round()
        assert result.steps_advanced == 5
        assert cluster.synchronization_count == 1

    def test_tau_schedule(self, cluster_and_test):
        cluster, _ = cluster_and_test
        strategy = LocalSGDStrategy(tau=lambda round_index: 2 + round_index).attach(cluster)
        assert strategy.run_round().steps_advanced == 2
        assert strategy.run_round().steps_advanced == 3

    def test_invalid_tau(self):
        with pytest.raises(ConfigurationError):
            LocalSGDStrategy(tau=0)

    def test_invalid_schedule_value(self, cluster_and_test):
        cluster, _ = cluster_and_test
        strategy = LocalSGDStrategy(tau=lambda _: 0).attach(cluster)
        with pytest.raises(ConfigurationError):
            strategy.run_round()

    def test_cheaper_than_synchronous_per_step(self, blobs_workload):
        sync_cluster, _ = build_cluster(blobs_workload)
        local_cluster, _ = build_cluster(blobs_workload)
        SynchronousStrategy().attach(sync_cluster).run_steps(20)
        LocalSGDStrategy(tau=10).attach(local_cluster).run_steps(20)
        assert local_cluster.total_bytes < sync_cluster.total_bytes


class TestFedOpt:
    def test_round_is_one_local_epoch(self, cluster_and_test):
        cluster, _ = cluster_and_test
        strategy = FedOptStrategy(FedAvg(), local_epochs=1).attach(cluster)
        expected = max(worker.batches_per_epoch for worker in cluster.workers)
        result = strategy.run_round()
        assert result.steps_advanced == expected
        assert result.synchronized

    def test_round_charges_one_model_allreduce(self, cluster_and_test):
        cluster, _ = cluster_and_test
        strategy = FedOptStrategy(FedAvgM(), local_epochs=1).attach(cluster)
        strategy.run_round()
        expected = cluster.model_dimension * 8 * cluster.num_workers
        assert cluster.tracker.bytes_for(CATEGORY_MODEL) == expected

    def test_all_workers_share_model_after_round(self, cluster_and_test):
        cluster, _ = cluster_and_test
        FedOptStrategy(FedAdam(0.01)).attach(cluster).run_round()
        assert cluster.model_variance() == pytest.approx(0.0, abs=1e-18)

    def test_named_after_server_optimizer(self):
        assert fedadam_strategy().name == "FedAdam"
        assert fedavgm_strategy().name == "FedAvgM"

    def test_invalid_local_epochs(self):
        with pytest.raises(ConfigurationError):
            FedOptStrategy(FedAvg(), local_epochs=0)


class TestFDAStrategy:
    def test_linear_variant_name(self):
        assert FDAStrategy(threshold=1.0, variant="linear").name == "LinearFDA"
        assert FDAStrategy(threshold=1.0, variant="sketch").name == "SketchFDA"

    def test_trainer_unavailable_before_attach(self):
        with pytest.raises(ConfigurationError):
            FDAStrategy(threshold=1.0).trainer

    def test_rounds_charge_state_traffic(self, cluster_and_test):
        cluster, _ = cluster_and_test
        strategy = FDAStrategy(threshold=1e9, variant="linear").attach(cluster)
        for _ in range(5):
            strategy.run_round()
        assert cluster.tracker.operations_for(CATEGORY_STATE) == 5
        assert strategy.synchronization_count == 0

    def test_zero_threshold_behaves_like_synchronous(self, cluster_and_test):
        cluster, _ = cluster_and_test
        strategy = FDAStrategy(threshold=0.0, variant="exact").attach(cluster)
        for _ in range(4):
            assert strategy.run_round().synchronized

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            FDAStrategy(threshold=-1.0)


class TestCompression:
    def test_quantization_reduces_transmitted_elements(self):
        compressor = QuantizationCompressor(bits=8)
        assert compressor.transmitted_elements(1000) < 1000

    def test_quantization_reconstruction_close(self):
        compressor = QuantizationCompressor(bits=8)
        vector = np.random.default_rng(0).normal(size=500)
        payload = compressor.compress(vector)
        error = np.abs(payload.vector - vector).max()
        assert error < np.abs(vector).max() / 100.0

    def test_quantization_zero_vector(self):
        compressor = QuantizationCompressor(bits=4)
        payload = compressor.compress(np.zeros(10))
        np.testing.assert_array_equal(payload.vector, 0.0)

    def test_topk_keeps_largest_entries(self):
        compressor = TopKCompressor(fraction=0.2)
        vector = np.array([0.1, -5.0, 0.2, 4.0, 0.05, 0.0, 0.3, -0.2, 0.15, 0.12])
        payload = compressor.compress(vector)
        nonzero = np.flatnonzero(payload.vector)
        assert set(nonzero) == {1, 3}

    def test_topk_transmitted_elements(self):
        assert TopKCompressor(0.1).transmitted_elements(1000) == 200

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            QuantizationCompressor(bits=0)
        with pytest.raises(ConfigurationError):
            TopKCompressor(fraction=0.0)

    def test_compressed_synchronizer_equalizes_models(self, cluster_and_test):
        cluster, _ = cluster_and_test
        synchronizer = CompressedSynchronizer(cluster, QuantizationCompressor(8))
        cluster.step_all()
        synchronizer.synchronize()
        assert cluster.model_variance() == pytest.approx(0.0, abs=1e-18)

    def test_compressed_synchronous_cheaper_than_plain(self, blobs_workload):
        plain_cluster, _ = build_cluster(blobs_workload)
        compressed_cluster, _ = build_cluster(blobs_workload)
        SynchronousStrategy().attach(plain_cluster).run_steps(10)
        CompressedSynchronousStrategy(QuantizationCompressor(8)).attach(
            compressed_cluster
        ).run_steps(10)
        assert compressed_cluster.total_bytes < plain_cluster.total_bytes
