"""Tests for the variance algebra (Eq. 2 / Eq. 4) and the FDA local states."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.state import ExactState, LinearState, SketchState, average_states
from repro.core.variance import (
    average_drift,
    drift_matrix,
    mean_squared_drift_norm,
    model_variance,
    variance_from_drifts,
)
from repro.exceptions import CommunicationError, ShapeError


def random_vectors(seed, num_workers, dimension, scale=1.0):
    rng = np.random.default_rng(seed)
    return [scale * rng.normal(size=dimension) for _ in range(num_workers)]


class TestModelVariance:
    def test_identical_models_have_zero_variance(self):
        vectors = [np.ones(5)] * 4
        assert model_variance(vectors) == 0.0

    def test_known_value(self):
        vectors = [np.array([0.0, 0.0]), np.array([2.0, 0.0])]
        # mean = (1, 0); squared distances are 1 and 1; variance = 1.
        assert model_variance(vectors) == pytest.approx(1.0)

    def test_requires_vectors(self):
        with pytest.raises(ShapeError):
            model_variance([])

    def test_requires_1d(self):
        with pytest.raises(ShapeError):
            model_variance([np.zeros((2, 2))])

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_workers=st.integers(min_value=1, max_value=8),
        dimension=st.integers(min_value=1, max_value=40),
    )
    def test_equation4_identity(self, seed, num_workers, dimension):
        """Var(w) == mean ||u_k||^2 - ||mean u||^2 for any reference offset."""
        parameters = random_vectors(seed, num_workers, dimension)
        reference = np.random.default_rng(seed + 1).normal(size=dimension)
        drifts = drift_matrix(parameters, reference)
        assert variance_from_drifts(list(drifts)) == pytest.approx(
            model_variance(parameters), rel=1e-9, abs=1e-9
        )

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_variance_is_offset_invariant(self, seed):
        parameters = random_vectors(seed, 5, 20)
        offset = np.random.default_rng(seed + 7).normal(size=20)
        shifted = [p + offset for p in parameters]
        assert model_variance(shifted) == pytest.approx(model_variance(parameters), rel=1e-9)

    def test_helper_terms(self):
        drifts = [np.array([1.0, 0.0]), np.array([0.0, 1.0])]
        assert mean_squared_drift_norm(drifts) == pytest.approx(1.0)
        np.testing.assert_allclose(average_drift(drifts), [0.5, 0.5])

    def test_drift_matrix_validates_reference(self):
        with pytest.raises(ShapeError):
            drift_matrix([np.zeros(3)], np.zeros(4))


class TestLocalStates:
    def test_linear_state_fields_and_size(self):
        state = LinearState(2.0, 0.5)
        assert state.num_elements == 2

    def test_linear_state_average(self):
        averaged = average_states([LinearState(2.0, 1.0), LinearState(4.0, 3.0)])
        assert averaged.drift_sq_norm == 3.0
        assert averaged.projection == 2.0

    def test_sketch_state_average(self):
        a = SketchState(1.0, np.ones((2, 3)))
        b = SketchState(3.0, np.zeros((2, 3)))
        averaged = average_states([a, b])
        assert averaged.drift_sq_norm == 2.0
        np.testing.assert_allclose(averaged.sketch, 0.5)
        assert averaged.num_elements == 1 + 6

    def test_exact_state_average(self):
        a = ExactState(1.0, np.array([1.0, 0.0]))
        b = ExactState(1.0, np.array([0.0, 1.0]))
        averaged = average_states([a, b])
        np.testing.assert_allclose(averaged.drift, [0.5, 0.5])

    def test_mixed_types_rejected(self):
        with pytest.raises(CommunicationError):
            average_states([LinearState(1.0, 0.0), ExactState(1.0, np.zeros(2))])

    def test_mismatched_sketch_shapes_rejected(self):
        with pytest.raises(CommunicationError):
            average_states(
                [SketchState(1.0, np.zeros((2, 3))), SketchState(1.0, np.zeros((2, 4)))]
            )

    def test_empty_average_rejected(self):
        with pytest.raises(CommunicationError):
            average_states([])

    def test_sketch_state_requires_matrix(self):
        with pytest.raises(ShapeError):
            SketchState(1.0, np.zeros(5))
        with pytest.raises(ShapeError):
            SketchState(1.0, None)

    def test_exact_state_requires_vector(self):
        with pytest.raises(ShapeError):
            ExactState(1.0, np.zeros((2, 2)))
