"""Tests for the collective-level compression subsystem (:mod:`repro.compression`).

Four groups:

* **Kernel edge cases** — k ≥ d top-k (dense fallback, exact reconstruction),
  all-zero inputs, quantization idempotence (decompress∘compress is a fixed
  point) at levels 2 / 4 / 256, layer-wise budgets, random-k determinism, and
  the legacy single-vector API.
* **Error feedback** — hypothesis-driven: under arbitrary participation
  masks, masked-out rows' residuals stay bit-untouched while active rows'
  residuals are exactly the untransmitted remainder, and payload + residual
  telescopes back to the input.
* **Byte accounting (the ``charge_*`` bugfix)** — for every topology, a
  compressed collective charges the compressed payload (indices + values for
  sparse formats, level bytes for quantized), the total equals the per-link
  ledger sum, and never the dense ``4·d``.
* **Integration** — compressed ``cluster.synchronize`` equalizes models and
  shrinks the ledger for every strategy path; config threading through
  ``WorkloadConfig`` and result persistence round-trips.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compression import (
    ClusterCompression,
    CompressionConfig,
    LayerwiseTopKCompressor,
    QuantizationCompressor,
    RandomKCompressor,
    SignCompressor,
    TopKCompressor,
    get_compression,
    make_compressor,
)
from repro.distributed.comm import BYTES_PER_ELEMENT
from repro.distributed.topology import NAMED_TOPOLOGIES, Fabric, get_topology
from repro.exceptions import ConfigurationError, ShapeError
from repro.experiments.persistence import result_from_dict, result_to_dict
from repro.experiments.setup import build_cluster
from repro.experiments.sweep import sweep_compression
from repro.experiments.run import TrainingRun
from repro.nn.plane import SlotLayout
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.local_sgd import LocalSGDStrategy
from repro.strategies.synchronous import SynchronousStrategy

ALL_TOPOLOGIES = sorted(NAMED_TOPOLOGIES)


# ---------------------------------------------------------------------------
# Kernel edge cases
# ---------------------------------------------------------------------------


class TestTopK:
    def test_keeps_largest_per_row_independently(self):
        matrix = np.array(
            [[0.1, -5.0, 0.2, 4.0], [3.0, 0.0, -0.5, 0.1]]
        )
        recon = TopKCompressor(0.5).compress_rows(matrix).reconstruct()
        np.testing.assert_array_equal(
            recon, [[0.0, -5.0, 0.0, 4.0], [3.0, 0.0, -0.5, 0.0]]
        )

    def test_k_at_least_d_is_exact_and_charged_dense(self):
        compressor = TopKCompressor(1.0)
        matrix = np.random.default_rng(0).normal(size=(3, 7))
        payloads = compressor.compress_rows(matrix)
        np.testing.assert_array_equal(payloads.reconstruct(), matrix)
        # Sending d (index, value) pairs would cost 2d; the dense vector wins.
        assert compressor.transmitted_elements(7) == 7

    def test_all_zero_rows_reconstruct_to_zero(self):
        payloads = TopKCompressor(0.5).compress_rows(np.zeros((2, 6)))
        np.testing.assert_array_equal(payloads.reconstruct(), 0.0)
        np.testing.assert_array_equal(payloads.mean(), 0.0)

    def test_mean_matches_dense_reconstruction_mean(self):
        matrix = np.random.default_rng(1).normal(size=(5, 40))
        payloads = TopKCompressor(0.2).compress_rows(matrix)
        np.testing.assert_allclose(
            payloads.mean(), payloads.reconstruct().mean(axis=0), rtol=0, atol=1e-15
        )

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            TopKCompressor(0.0)
        with pytest.raises(ConfigurationError):
            TopKCompressor(1.5)


class TestQuantization:
    @pytest.mark.parametrize("levels", [2, 4, 256])
    def test_decompress_compress_is_idempotent(self, levels):
        rng = np.random.default_rng(levels)
        matrix = rng.normal(size=(4, 65)) * rng.choice([1e-6, 1.0, 1e4], size=(4, 1))
        compressor = QuantizationCompressor(levels=levels)
        once = compressor.compress_rows(matrix).reconstruct()
        twice = compressor.compress_rows(once).reconstruct()
        np.testing.assert_array_equal(once, twice)

    def test_all_zero_rows_stay_zero(self):
        recon = QuantizationCompressor(bits=4).compress_rows(np.zeros((3, 9))).reconstruct()
        np.testing.assert_array_equal(recon, 0.0)

    def test_mixed_zero_and_nonzero_rows(self):
        matrix = np.array([[0.0, 0.0, 0.0], [1.0, -0.5, 0.25]])
        recon = QuantizationCompressor(bits=8).compress_rows(matrix).reconstruct()
        np.testing.assert_array_equal(recon[0], 0.0)
        assert np.abs(recon[1] - matrix[1]).max() < 1e-2

    def test_row_maximum_is_exactly_preserved(self):
        matrix = np.array([[0.3, -0.1, 0.05]])
        recon = QuantizationCompressor(levels=4).compress_rows(matrix).reconstruct()
        assert recon[0, 0] == 0.3

    def test_transmitted_elements_count_level_bytes_not_dense(self):
        # 1000 8-bit codes = 250 float32 equivalents, plus one scale.
        assert QuantizationCompressor(bits=8).transmitted_elements(1000) == 251
        assert QuantizationCompressor(bits=8).transmitted_elements(0) == 0

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            QuantizationCompressor(bits=0)
        with pytest.raises(ConfigurationError):
            QuantizationCompressor(levels=0)


class TestRandomK:
    def test_same_seed_same_coordinates(self):
        matrix = np.random.default_rng(3).normal(size=(4, 30))
        recon_a = RandomKCompressor(0.2, seed=7).compress_rows(matrix).reconstruct()
        recon_b = RandomKCompressor(0.2, seed=7).compress_rows(matrix).reconstruct()
        np.testing.assert_array_equal(recon_a, recon_b)

    def test_kept_values_are_exact_input_entries(self):
        matrix = np.random.default_rng(4).normal(size=(3, 20))
        recon = RandomKCompressor(0.25, seed=0).compress_rows(matrix).reconstruct()
        kept = recon != 0.0
        np.testing.assert_array_equal(recon[kept], matrix[kept])

    def test_shared_seed_costs_values_only(self):
        # k values + 1 seed element, not 2k index/value pairs.
        assert RandomKCompressor(0.1, seed=0).transmitted_elements(1000) == 101


class TestSign:
    def test_reconstruction_is_sign_times_row_scale(self):
        matrix = np.array([[1.0, -2.0, 0.0, 3.0]])
        recon = SignCompressor().compress_rows(matrix).reconstruct()
        np.testing.assert_allclose(recon, [[1.5, -1.5, 0.0, 1.5]])

    def test_one_bit_accounting(self):
        assert SignCompressor().transmitted_elements(64) == 3  # 2 words + scale

    def test_all_zero_rows(self):
        recon = SignCompressor().compress_rows(np.zeros((2, 5))).reconstruct()
        np.testing.assert_array_equal(recon, 0.0)


class TestLayerwiseTopK:
    LAYOUT = [SlotLayout(0, 8, (8,)), SlotLayout(8, 2, (2,)), SlotLayout(10, 10, (10,))]

    def test_every_layer_keeps_its_own_budget(self):
        rng = np.random.default_rng(5)
        matrix = rng.normal(size=(3, 20))
        # Make one layer dominate in magnitude; global top-k would starve the rest.
        matrix[:, :8] *= 100.0
        compressor = LayerwiseTopKCompressor(0.5, layout=self.LAYOUT)
        recon = compressor.compress_rows(matrix).reconstruct()
        for slot in self.LAYOUT:
            block = recon[:, slot.offset : slot.offset + slot.size]
            expected_keep = max(1, round(slot.size * 0.5))
            assert np.all((block != 0).sum(axis=1) == expected_keep)

    def test_unbound_layout_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError):
            LayerwiseTopKCompressor(0.5).compress_rows(np.ones((1, 4)))

    def test_mismatched_layout_is_a_shape_error(self):
        compressor = LayerwiseTopKCompressor(0.5, layout=self.LAYOUT)
        with pytest.raises(ShapeError):
            compressor.compress_rows(np.ones((1, 4)))

    def test_transmitted_elements_sum_per_layer_budgets(self):
        compressor = LayerwiseTopKCompressor(0.5, layout=self.LAYOUT)
        # 8·0.5=4 pairs, 2·0.5=1 pair (capped at size 2), 10·0.5=5 pairs.
        assert compressor.transmitted_elements(20) == 2 * 4 + 2 * 1 + 2 * 5


class TestLegacySingleVectorApi:
    def test_compress_matches_row_kernel(self):
        vector = np.random.default_rng(6).normal(size=50)
        for compressor in (QuantizationCompressor(8), TopKCompressor(0.2), SignCompressor()):
            payload = compressor.compress(vector)
            rows = compressor.compress_rows(vector[None, :])
            np.testing.assert_array_equal(payload.vector, rows.reconstruct()[0])
            assert payload.transmitted_elements == rows.elements_per_row

    def test_empty_vector(self):
        payload = TopKCompressor(0.5).compress(np.zeros(0))
        assert payload.transmitted_elements == 0
        assert payload.vector.size == 0


# ---------------------------------------------------------------------------
# Error feedback under arbitrary masks (hypothesis)
# ---------------------------------------------------------------------------

EF_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def masked_rounds(draw):
    num_workers = draw(st.integers(min_value=2, max_value=6))
    dimension = draw(st.integers(min_value=3, max_value=24))
    num_rounds = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    drifts = [rng.normal(size=(num_workers, dimension)) for _ in range(num_rounds)]
    masks = [
        draw(
            st.lists(st.booleans(), min_size=num_workers, max_size=num_workers).filter(any)
        )
        for _ in range(num_rounds)
    ]
    return drifts, masks


class TestErrorFeedback:
    @EF_SETTINGS
    @given(case=masked_rounds())
    def test_masked_rows_keep_residuals_bit_untouched(self, case):
        drifts, masks = case
        num_workers, dimension = drifts[0].shape
        state = ClusterCompression(
            CompressionConfig("topk", ratio=0.34, error_feedback=True),
            num_workers=num_workers,
            dimension=dimension,
        )
        for drift, mask in zip(drifts, masks):
            rows = np.flatnonzero(mask)
            before = state.residual_matrix.copy()
            expected_active = drift[rows] + before[rows]
            payloads = state.compress_update(drift, rows=rows)
            after = state.residual_matrix
            inactive = np.flatnonzero(~np.asarray(mask))
            # Bit-untouched: not merely equal values, the exact same bits.
            assert np.array_equal(
                before[inactive].view(np.uint64), after[inactive].view(np.uint64)
            )
            # Active rows: payload + residual telescopes to drift + old residual.
            np.testing.assert_array_equal(
                payloads.reconstruct() + after[rows], expected_active
            )

    @EF_SETTINGS
    @given(case=masked_rounds())
    def test_without_error_feedback_no_state_is_kept(self, case):
        drifts, masks = case
        num_workers, dimension = drifts[0].shape
        state = ClusterCompression(
            CompressionConfig("topk", ratio=0.34, error_feedback=False),
            num_workers=num_workers,
            dimension=dimension,
        )
        assert state.residual_matrix is None
        rows = np.flatnonzero(masks[0])
        payloads = state.compress_update(drifts[0], rows=rows)
        assert payloads.reconstruct().shape == (rows.size, dimension)

    def test_empty_participation_round_is_a_zero_delta_noop(self):
        state = ClusterCompression(
            CompressionConfig("topk", ratio=0.5, error_feedback=True),
            num_workers=3,
            dimension=5,
        )
        drift = np.random.default_rng(0).normal(size=(3, 5))
        payloads = state.compress_update(drift, rows=np.array([], dtype=int))
        np.testing.assert_array_equal(payloads.mean(), np.zeros(5))
        np.testing.assert_array_equal(state.residual_matrix, 0.0)
        dense = QuantizationCompressor(8).compress_rows(np.empty((0, 5)))
        np.testing.assert_array_equal(dense.mean(), np.zeros(5))

    def test_full_participation_residual_is_untransmitted_remainder(self):
        state = ClusterCompression(
            CompressionConfig("topk", ratio=0.5, error_feedback=True),
            num_workers=2,
            dimension=4,
        )
        drift = np.array([[1.0, -3.0, 0.5, 2.0], [0.0, 0.1, -0.2, 0.05]])
        payloads = state.compress_update(drift)
        np.testing.assert_array_equal(
            payloads.reconstruct() + state.residual_matrix, drift
        )

    def test_dropped_mass_reenters_the_next_payload(self):
        state = ClusterCompression(
            CompressionConfig("topk", ratio=0.25, error_feedback=True),
            num_workers=1,
            dimension=4,
        )
        first = np.array([[4.0, 3.0, 2.0, 1.0]])
        state.compress_update(first)  # transmits only the 4.0
        second = state.compress_update(np.zeros((1, 4)))
        # With zero new drift, the largest residual entry (3.0) is transmitted.
        np.testing.assert_array_equal(second.reconstruct(), [[0.0, 3.0, 0.0, 0.0]])


# ---------------------------------------------------------------------------
# Compressed byte accounting per topology (the charge_* bugfix)
# ---------------------------------------------------------------------------


class TestCompressedCharges:
    @pytest.mark.parametrize("name", ALL_TOPOLOGIES)
    def test_allreduce_charges_compressed_payload_and_conserves_links(self, name):
        dimension, num_workers = 10_000, 8
        compressor = TopKCompressor(0.1)
        fabric = Fabric(topology=get_topology(name))
        charge = fabric.allreduce(
            dimension, num_workers, "model-sync", compression=compressor
        )
        transmitted = compressor.transmitted_elements(dimension)
        dense = Fabric(topology=get_topology(name)).allreduce(
            dimension, num_workers, "model-sync"
        )
        # Identical to pricing the compressed element count directly ...
        assert charge.num_bytes == Fabric(topology=get_topology(name)).allreduce(
            transmitted, num_workers, "model-sync"
        ).num_bytes
        # ... strictly below the dense 4·d charge, by the kernel's ratio.
        assert charge.num_bytes < dense.num_bytes
        # Conservation: the total equals the per-link ledger sum.
        assert sum(fabric.bytes_by_link.values()) == pytest.approx(
            charge.num_bytes, abs=len(fabric.bytes_by_link)
        )

    @pytest.mark.parametrize("name", ALL_TOPOLOGIES)
    def test_broadcast_and_upload_charge_compressed_payloads(self, name):
        dimension, num_workers = 5_000, 6
        compressor = QuantizationCompressor(bits=8)
        transmitted = compressor.transmitted_elements(dimension)
        fabric = Fabric(topology=get_topology(name))
        broadcast = fabric.broadcast(
            dimension, num_workers, "model-sync", compression=compressor
        )
        assert broadcast.num_bytes == Fabric(topology=get_topology(name)).broadcast(
            transmitted, num_workers, "model-sync"
        ).num_bytes
        upload = fabric.upload(
            dimension, num_workers, "fda-state", worker_id=num_workers - 1,
            compression=compressor,
        )
        assert upload.num_bytes == Fabric(topology=get_topology(name)).upload(
            transmitted, num_workers, "fda-state", worker_id=num_workers - 1
        ).num_bytes
        assert sum(fabric.bytes_by_link.values()) == pytest.approx(
            broadcast.num_bytes + upload.num_bytes, abs=len(fabric.bytes_by_link)
        )

    def test_star_charges_exactly_k_compressed_uploads(self):
        dimension, num_workers = 1_000, 5
        compressor = TopKCompressor(0.1)
        fabric = Fabric(topology=get_topology("star"))
        charge = fabric.allreduce(
            dimension, num_workers, "model-sync", compression=compressor
        )
        keep = max(1, round(dimension * 0.1))
        assert charge.num_bytes == num_workers * 2 * keep * BYTES_PER_ELEMENT

    def test_network_seconds_shrink_with_the_payload(self):
        from repro.distributed.network import FL_NETWORK

        dimension, num_workers = 100_000, 4
        plain = Fabric(topology=get_topology("star"), network=FL_NETWORK)
        compressed = Fabric(topology=get_topology("star"), network=FL_NETWORK)
        plain_charge = plain.allreduce(dimension, num_workers, "model-sync")
        compressed_charge = compressed.allreduce(
            dimension, num_workers, "model-sync", compression=TopKCompressor(0.05)
        )
        assert compressed_charge.seconds < plain_charge.seconds


# ---------------------------------------------------------------------------
# Cluster / strategy / experiment integration
# ---------------------------------------------------------------------------


QUICK_RUN = TrainingRun(accuracy_target=0.99, max_steps=40, eval_every_steps=20)


class TestClusterIntegration:
    def test_compressed_synchronize_equalizes_models(self, blobs_workload):
        cluster, _ = build_cluster(
            blobs_workload.with_compression(
                CompressionConfig("topk", ratio=0.2, error_feedback=True)
            )
        )
        cluster.broadcast_parameters(cluster.workers[0].get_parameters())
        cluster.step_all()
        cluster.synchronize()
        assert cluster.model_variance() == pytest.approx(0.0, abs=1e-18)

    @pytest.mark.parametrize(
        "strategy_factory",
        [
            lambda: SynchronousStrategy(),
            lambda: LocalSGDStrategy(tau=2),
            lambda: FDAStrategy(threshold=0.0, variant="exact"),
        ],
        ids=["synchronous", "local-sgd", "fda"],
    )
    def test_every_sync_path_compresses_uniformly(self, blobs_workload, strategy_factory):
        plain_cluster, _ = build_cluster(blobs_workload)
        compressed_cluster, _ = build_cluster(
            blobs_workload.with_compression(
                CompressionConfig("topk", ratio=0.1, error_feedback=True)
            )
        )
        strategy_factory().attach(plain_cluster).run_steps(8)
        strategy_factory().attach(compressed_cluster).run_steps(8)
        assert plain_cluster.synchronization_count == compressed_cluster.synchronization_count
        assert (
            compressed_cluster.tracker.bytes_for("model-sync")
            < plain_cluster.tracker.bytes_for("model-sync")
        )

    def test_enable_compression_binds_the_model_layout(self, blobs_workload):
        cluster, _ = build_cluster(
            blobs_workload.with_compression(
                CompressionConfig("layerwise-topk", ratio=0.25)
            )
        )
        cluster.broadcast_parameters(cluster.workers[0].get_parameters())
        cluster.step_all()
        cluster.synchronize()  # would raise without a bound layout
        assert cluster.compression_label == "layerwise-topk(ratio=0.25)"

    def test_allreduce_with_explicit_compression_kernel(self, blobs_workload):
        cluster, _ = build_cluster(blobs_workload)
        vectors = np.random.default_rng(0).normal(size=(cluster.num_workers, 40))
        compressor = QuantizationCompressor(8)
        bytes_before = cluster.total_bytes
        averaged = cluster.allreduce(vectors, "other", compression=compressor)
        charged = cluster.total_bytes - bytes_before
        assert charged == compressor.transmitted_elements(40) * 8 * cluster.num_workers
        np.testing.assert_allclose(
            averaged, compressor.compress_rows(vectors).mean(), rtol=0, atol=0
        )


class TestConfigThreading:
    def test_workload_normalizes_and_rejects_specs(self, blobs_workload):
        assert blobs_workload.with_compression("topk").compression == CompressionConfig("topk")
        assert blobs_workload.with_compression("none").compression is None
        with pytest.raises(ConfigurationError):
            blobs_workload.with_compression("gzip")
        with pytest.raises(ConfigurationError):
            blobs_workload.with_compression(CompressionConfig("topk", ratio=2.0))

    def test_config_rejects_bits_without_a_representable_level(self):
        # bits=1 would only fail deep inside make_compressor; the config must
        # reject it eagerly, where the workload is defined.
        with pytest.raises(ConfigurationError):
            CompressionConfig("quantization", bits=1)

    def test_describe_shows_only_the_knob_the_kernel_reads(self):
        assert CompressionConfig("signsgd").describe() == "signsgd"
        assert (
            CompressionConfig("signsgd", error_feedback=True).describe() == "signsgd+ef"
        )
        assert CompressionConfig("quantization", bits=4).describe() == "quantization(bits=4)"

    def test_get_compression_round_trip(self):
        config = CompressionConfig("quantization", bits=4, error_feedback=True)
        assert get_compression(config) is config
        assert CompressionConfig.from_dict(config.to_dict()) == config
        assert make_compressor(config).name == "quantization"

    def test_run_result_records_and_persists_compression(self, blobs_workload):
        workload = blobs_workload.with_compression(
            CompressionConfig("topk", ratio=0.1, error_feedback=True)
        )
        cluster, test_dataset = build_cluster(workload)
        result = QUICK_RUN.execute(
            SynchronousStrategy(), cluster, test_dataset, workload_name="blobs"
        )
        assert result.compression == "topk(ratio=0.1)+ef"
        restored = result_from_dict(result_to_dict(result))
        assert restored.compression == result.compression

    def test_sweep_compression_orders_cells_by_savings(self, blobs_workload):
        points = sweep_compression(
            blobs_workload,
            QUICK_RUN,
            lambda: SynchronousStrategy(),
            compressions=("none", CompressionConfig("topk", ratio=0.1)),
        )
        assert [p.compression for p in points] == ["none", "topk(ratio=0.1)"]
        assert points[1].model_bytes < points[0].model_bytes
