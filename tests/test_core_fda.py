"""Tests for the FDA trainer (Algorithm 1) and the Round Invariant."""

import numpy as np
import pytest

from repro.core.fda import FDATrainer
from repro.core.monitor import ExactMonitor, LinearMonitor, SketchMonitor
from repro.core.theta import DynamicThetaController
from repro.data.partition import partition_dataset
from repro.data.synthetic import gaussian_blobs
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.worker import Worker
from repro.exceptions import ConfigurationError
from repro.nn.architectures import mlp
from repro.optim.adam import Adam


def make_cluster(num_workers=4, seed=0):
    data = gaussian_blobs(320, feature_dim=8, num_classes=3, seed=seed)
    shards = partition_dataset(data, num_workers, "iid", seed=seed)
    workers = [
        Worker(
            worker_id=i,
            model=mlp(8, 3, hidden_units=(12,), seed=seed),
            dataset=shard,
            optimizer=Adam(0.02),
            batch_size=16,
            seed=seed + i,
        )
        for i, shard in enumerate(shards)
    ]
    return SimulatedCluster(workers)


def make_trainer(threshold, monitor=None, num_workers=4, **kwargs):
    cluster = make_cluster(num_workers)
    monitor = monitor or ExactMonitor()
    return FDATrainer(cluster, monitor, threshold, **kwargs)


class TestInitialization:
    def test_workers_start_from_common_model(self):
        trainer = make_trainer(1.0)
        reference = trainer.cluster.workers[0].get_parameters()
        for worker in trainer.cluster.workers:
            np.testing.assert_array_equal(worker.get_parameters(), reference)

    def test_negative_threshold_rejected(self):
        cluster = make_cluster(2)
        with pytest.raises(ConfigurationError):
            FDATrainer(cluster, ExactMonitor(), -1.0)


class TestStepBehaviour:
    def test_step_advances_all_workers(self):
        trainer = make_trainer(1e9)
        result = trainer.step()
        assert result.step == 1
        assert trainer.cluster.parallel_steps == 1
        assert np.isfinite(result.mean_loss)

    def test_large_threshold_avoids_synchronization(self):
        trainer = make_trainer(1e9)
        results = trainer.run_steps(10)
        assert all(not r.synchronized for r in results)
        assert trainer.synchronization_count == 0

    def test_zero_threshold_synchronizes_every_step(self):
        # Theta = 0 degenerates to the Synchronous strategy, as the paper notes.
        trainer = make_trainer(0.0)
        results = trainer.run_steps(5)
        assert all(r.synchronized for r in results)
        assert trainer.synchronization_count == 5

    def test_state_traffic_charged_every_step(self):
        trainer = make_trainer(1e9, monitor=LinearMonitor(dimension=147, seed=0))
        trainer.run_steps(4)
        tracker = trainer.cluster.tracker
        assert tracker.operations_for("fda-state") == 4
        assert tracker.bytes_for("fda-state") == 4 * 2 * 8 * 4  # steps * elems * bytes * K

    def test_sync_resets_variance_and_reference(self):
        trainer = make_trainer(0.0)
        trainer.step()
        assert trainer.cluster.model_variance() == pytest.approx(0.0, abs=1e-18)
        np.testing.assert_allclose(
            trainer.reference_parameters, trainer.cluster.workers[0].get_parameters()
        )

    def test_estimate_reported(self):
        trainer = make_trainer(1e9)
        result = trainer.step()
        assert result.variance_estimate == trainer.last_estimate
        assert result.variance_estimate >= 0.0

    def test_run_steps_validates_input(self):
        trainer = make_trainer(1.0)
        with pytest.raises(ConfigurationError):
            trainer.run_steps(-1)


class TestRoundInvariant:
    @pytest.mark.parametrize("theta", [0.05, 0.2, 1.0])
    def test_exact_monitor_maintains_round_invariant(self, theta):
        """With the exact monitor, Var(w_t) <= Theta holds after every step."""
        trainer = make_trainer(theta, monitor=ExactMonitor())
        for _ in range(25):
            trainer.step()
            assert trainer.cluster.model_variance() <= theta + 1e-9

    def test_linear_monitor_maintains_round_invariant(self):
        theta = 0.2
        trainer = make_trainer(theta, monitor=LinearMonitor(dimension=147, seed=0))
        for _ in range(25):
            trainer.step()
            assert trainer.cluster.model_variance() <= theta + 1e-9

    def test_sketch_monitor_roughly_maintains_round_invariant(self):
        theta = 0.2
        trainer = make_trainer(theta, monitor=SketchMonitor(depth=5, width=64, seed=0))
        violations = 0
        for _ in range(25):
            trainer.step()
            if trainer.cluster.model_variance() > theta * 1.1:
                violations += 1
        assert violations <= 2  # the guarantee is probabilistic

    def test_smaller_theta_synchronizes_more(self):
        tight = make_trainer(0.05)
        loose = make_trainer(0.8)
        tight.run_steps(30)
        loose.run_steps(30)
        assert tight.synchronization_count >= loose.synchronization_count
        assert tight.synchronization_rate >= loose.synchronization_rate


class TestForceSynchronizationAndDynamicTheta:
    def test_force_synchronization(self):
        trainer = make_trainer(1e9)
        trainer.run_steps(5)
        assert trainer.cluster.model_variance() > 0
        trainer.force_synchronization()
        assert trainer.cluster.model_variance() == pytest.approx(0.0, abs=1e-18)
        assert trainer.synchronization_count == 1

    def test_dynamic_theta_reacts_to_traffic(self):
        controller = DynamicThetaController(
            target_bytes_per_step=1.0, window=5, adjustment=2.0
        )
        trainer = make_trainer(0.0, theta_controller=controller)
        trainer.run_steps(10)
        # Synchronizing every step blows through a 1-byte budget, so the
        # controller must have raised Theta above its initial zero value.
        assert trainer.threshold > 0.0

    def test_history_records_every_step(self):
        trainer = make_trainer(0.5)
        trainer.run_steps(7)
        assert len(trainer.history) == 7
        assert trainer.history[-1].parallel_steps == 7
