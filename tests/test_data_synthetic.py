"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    gaussian_blobs,
    synthetic_cifar,
    synthetic_cifar_pair,
    synthetic_digits,
    synthetic_features,
    synthetic_mnist_pair,
)
from repro.exceptions import DataError


class TestSyntheticDigits:
    def test_shapes_and_labels(self):
        data = synthetic_digits(120, image_size=14, num_classes=10, seed=0)
        assert data.x.shape == (120, 14, 14, 1)
        assert data.num_classes == 10
        assert set(np.unique(data.y)).issubset(set(range(10)))

    def test_classes_are_balanced(self):
        data = synthetic_digits(200, num_classes=10, seed=0)
        counts = data.class_counts()
        assert counts.max() - counts.min() <= 1

    def test_reproducible(self):
        a = synthetic_digits(50, seed=3)
        b = synthetic_digits(50, seed=3)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_different_seeds_give_different_tasks(self):
        a = synthetic_digits(50, seed=1)
        b = synthetic_digits(50, seed=2)
        assert not np.array_equal(a.x, b.x)

    def test_classes_are_distinguishable(self):
        # Nearest-class-prototype classification should beat chance by a lot.
        data = synthetic_digits(300, noise=0.2, seed=0)
        flat = data.x.reshape(len(data), -1)
        prototypes = np.stack([flat[data.y == c].mean(axis=0) for c in range(10)])
        predictions = np.argmin(
            ((flat[:, None, :] - prototypes[None, :, :]) ** 2).sum(axis=2), axis=1
        )
        assert (predictions == data.y).mean() > 0.8

    def test_invalid_arguments(self):
        with pytest.raises(DataError):
            synthetic_digits(0)
        with pytest.raises(DataError):
            synthetic_digits(10, num_classes=1)
        with pytest.raises(DataError):
            synthetic_digits(10, image_size=3)
        with pytest.raises(DataError):
            synthetic_digits(10, noise=-1)


class TestSyntheticCifar:
    def test_shapes(self):
        data = synthetic_cifar(60, image_size=12, channels=3, seed=0)
        assert data.x.shape == (60, 12, 12, 3)

    def test_channel_count_configurable(self):
        data = synthetic_cifar(20, channels=1, seed=0)
        assert data.sample_shape[-1] == 1

    def test_reproducible(self):
        a = synthetic_cifar(30, seed=9)
        b = synthetic_cifar(30, seed=9)
        np.testing.assert_array_equal(a.x, b.x)


class TestSyntheticFeatures:
    def test_shapes(self):
        data = synthetic_features(100, feature_dim=16, num_classes=5, seed=0)
        assert data.x.shape == (100, 16)
        assert data.num_classes == 5

    def test_separation_controls_difficulty(self):
        easy = synthetic_features(400, feature_dim=8, num_classes=4, class_separation=8.0, seed=0)
        hard = synthetic_features(400, feature_dim=8, num_classes=4, class_separation=0.5, seed=0)

        def nearest_prototype_accuracy(data):
            prototypes = np.stack([data.x[data.y == c].mean(axis=0) for c in range(4)])
            predictions = np.argmin(
                ((data.x[:, None, :] - prototypes[None, :, :]) ** 2).sum(axis=2), axis=1
            )
            return (predictions == data.y).mean()

        assert nearest_prototype_accuracy(easy) > nearest_prototype_accuracy(hard)

    def test_gaussian_blobs_wrapper(self):
        data = gaussian_blobs(90, feature_dim=4, num_classes=3, seed=0)
        assert data.x.shape == (90, 4) and data.num_classes == 3

    def test_invalid_arguments(self):
        with pytest.raises(DataError):
            synthetic_features(10, feature_dim=1)
        with pytest.raises(DataError):
            synthetic_features(10, class_separation=0.0)


class TestPairs:
    def test_mnist_pair_shares_class_structure(self):
        train, test = synthetic_mnist_pair(300, 100, seed=0)
        assert len(train) == 300 and len(test) == 100
        # Nearest-prototype classifiers built on train transfer to test.
        flat_train = train.x.reshape(len(train), -1)
        flat_test = test.x.reshape(len(test), -1)
        prototypes = np.stack(
            [flat_train[train.y == c].mean(axis=0) for c in range(train.num_classes)]
        )
        predictions = np.argmin(
            ((flat_test[:, None, :] - prototypes[None, :, :]) ** 2).sum(axis=2), axis=1
        )
        assert (predictions == test.y).mean() > 0.7

    def test_cifar_pair_sizes(self):
        train, test = synthetic_cifar_pair(150, 50, seed=0)
        assert len(train) == 150 and len(test) == 50
