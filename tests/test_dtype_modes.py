"""The dtype-parametric parameter plane: float32 as a first-class mode.

Pins the contracts of the backend/dtype seam (:mod:`repro.backend`) and its
threading through the stack:

* dtype resolution — explicit ``dtype=`` wins, otherwise the cluster inherits
  the workers' (uniform) model dtype, and mixed-dtype worker sets are a
  configuration error;
* the no-copy collective fast path — an already-stacked ``(K, n)`` matrix in
  the plane dtype flows through ``allreduce`` without the silent full-matrix
  ``astype`` copy the old hardcoded-float64 comparison forced, and the
  uncompressed ``gather_models`` returns the live parameter matrix;
* conservation — on every topology, a float32 run charges *exactly* half the
  uncompressed sync bytes of the equivalent float64 run (4 vs 8 B/element);
* configuration surface — ``WorkloadConfig.dtype`` / ``with_dtype``, the
  ``RunResult.dtype`` persistence round-trip, and end-to-end float32
  training on both engines.
"""

import numpy as np
import pytest

from helpers.parity import make_cluster
from repro.backend import (
    DEFAULT_DTYPE,
    itemsize,
    parity_tolerance,
    resolve_dtype,
    tolerance,
)
from repro.data.synthetic import gaussian_blobs
from repro.exceptions import ConfigurationError
from repro.experiments.persistence import result_from_dict, result_to_dict
from repro.experiments.run import RunResult
from repro.experiments.setup import WorkloadConfig, build_cluster, make_optimizer
from repro.nn.architectures import mlp
from repro.optim.sgd import SGD
from repro.strategies.synchronous import SynchronousStrategy


# ---------------------------------------------------------------------------
# The backend seam
# ---------------------------------------------------------------------------


class TestBackendSeam:
    def test_resolve_dtype_accepts_the_supported_spellings(self):
        assert resolve_dtype(None) == DEFAULT_DTYPE == np.dtype(np.float64)
        for spec in ("float32", np.float32, np.dtype(np.float32)):
            assert resolve_dtype(spec) == np.dtype(np.float32)

    @pytest.mark.parametrize("bad", ["float16", np.int64, "complex128", object])
    def test_resolve_dtype_rejects_everything_else(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_dtype(bad)

    def test_itemsize_matches_the_fabric_pricing(self):
        assert itemsize("float64") == 8
        assert itemsize("float32") == 4

    def test_float64_tolerance_is_exact(self):
        assert tolerance("float64") == {"rtol": 0.0, "atol": 0.0}

    def test_float32_parity_tolerance_widens_with_steps(self):
        one = parity_tolerance("float32", steps=1)
        many = parity_tolerance("float32", steps=100)
        assert 0.0 < one["rtol"] < many["rtol"]
        assert many["rtol"] == pytest.approx(10.0 * one["rtol"])  # sqrt(100)


# ---------------------------------------------------------------------------
# Cluster dtype resolution
# ---------------------------------------------------------------------------


class TestClusterDtypeResolution:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_explicit_dtype_converts_the_plane_and_the_models(self, dtype):
        cluster = make_cluster("sequential", num_workers=3, dtype=dtype)
        expected = np.dtype(dtype)
        assert cluster.dtype == expected
        assert cluster.dtype_name == dtype
        assert cluster.parameter_matrix.dtype == expected
        for worker in cluster.workers:
            assert worker.model.dtype == expected
            assert worker.parameters_view().dtype == expected

    def test_cluster_inherits_a_uniform_model_dtype(self):
        cluster = make_cluster("sequential", num_workers=2)
        assert cluster.dtype == np.dtype(np.float64)  # factory models are float64

    def test_mixed_model_dtypes_are_a_configuration_error(self):
        from repro.data.datasets import Dataset
        from repro.distributed.cluster import SimulatedCluster
        from repro.distributed.worker import Worker

        rng = np.random.default_rng(0)
        workers = []
        for worker_id in range(2):
            model = mlp(6, 3, hidden_units=(8,), seed=1)
            if worker_id == 1:
                model.to_dtype(np.float32)
            data = Dataset(rng.normal(size=(20, 6)), rng.integers(0, 3, size=20), 3)
            workers.append(Worker(worker_id, model, data, SGD(0.05), batch_size=8))
        with pytest.raises(ConfigurationError):
            SimulatedCluster(workers)


# ---------------------------------------------------------------------------
# The no-copy collective fast path (satellite: allreduce / gather_models)
# ---------------------------------------------------------------------------


class TestCollectiveNoCopy:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_stack_vectors_keeps_a_matching_matrix(self, dtype):
        cluster = make_cluster("sequential", num_workers=3, dtype=dtype)
        matrix = np.ones((3, 10), dtype=cluster.dtype)
        stacked = cluster._stack_vectors(matrix)
        assert stacked is matrix  # no astype copy, no re-stack
        assert np.shares_memory(stacked, matrix)

    def test_stack_vectors_casts_a_mismatched_matrix(self):
        cluster = make_cluster("sequential", num_workers=3, dtype="float32")
        matrix = np.ones((3, 10), dtype=np.float64)
        stacked = cluster._stack_vectors(matrix)
        assert stacked.dtype == np.float32
        assert not np.shares_memory(stacked, matrix)

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_uncompressed_gather_models_returns_the_live_plane(self, dtype):
        cluster = make_cluster("sequential", num_workers=3, dtype=dtype)
        gathered = cluster.gather_models()
        assert np.shares_memory(gathered, cluster.parameter_matrix)


# ---------------------------------------------------------------------------
# Byte conservation: float32 charges exactly half, on every topology
# ---------------------------------------------------------------------------


class TestByteConservation:
    @pytest.mark.float32_smoke
    @pytest.mark.parametrize("topology", ["star", "ring", "hierarchical", "gossip"])
    def test_float32_sync_bytes_are_exactly_half_of_float64(self, topology):
        totals = {}
        for dtype in ("float64", "float32"):
            cluster = make_cluster(
                "sequential", num_workers=4, dtype=dtype, topology=topology
            )
            cluster.synchronize()
            cluster.allreduce(np.ones((4, 33), dtype=cluster.dtype), "other")
            cluster.gather_models()
            totals[dtype] = cluster.total_bytes
        assert totals["float64"] == 2 * totals["float32"]
        assert totals["float32"] > 0

    def test_explicit_cost_model_overrides_itemsize_pricing(self):
        from repro.distributed.comm import NAIVE_COST_MODEL

        cluster = make_cluster(
            "sequential", num_workers=4, dtype="float64", cost_model=NAIVE_COST_MODEL
        )
        cluster.synchronize(include_buffers=False)
        # Pinned 4 B/element accounting regardless of the float64 plane.
        assert cluster.total_bytes == cluster.model_dimension * 4 * 4


# ---------------------------------------------------------------------------
# Configuration surface: WorkloadConfig, persistence, end-to-end training
# ---------------------------------------------------------------------------


def _blobs_workload(dtype="float64", execution="sequential"):
    train = gaussian_blobs(160, feature_dim=6, num_classes=3, seed=0)
    test = gaussian_blobs(60, feature_dim=6, num_classes=3, seed=1)
    return WorkloadConfig(
        name="blobs",
        model_factory=lambda: mlp(6, 3, hidden_units=(8,), seed=2),
        train_dataset=train,
        test_dataset=test,
        optimizer_factory=make_optimizer("sgd"),
        num_workers=3,
        batch_size=16,
        dtype=dtype,
        execution=execution,
    )


class TestWorkloadConfigSurface:
    def test_dtype_normalizes_and_with_dtype_round_trips(self):
        workload = _blobs_workload()
        assert workload.dtype == "float64"
        assert workload.with_dtype(np.float32).dtype == "float32"
        assert workload.with_dtype("float32").with_dtype(None).dtype == "float64"
        with pytest.raises(ConfigurationError):
            workload.with_dtype("int32")

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_build_cluster_threads_the_dtype(self, dtype):
        cluster, _ = build_cluster(_blobs_workload(dtype=dtype))
        assert cluster.dtype_name == dtype
        assert cluster.tracker.cost_model.bytes_per_element == itemsize(dtype)

    @pytest.mark.float32_smoke
    @pytest.mark.parametrize("execution", ["sequential", "batched"])
    def test_float32_training_runs_end_to_end(self, execution):
        cluster, _ = build_cluster(_blobs_workload(dtype="float32", execution=execution))
        strategy = SynchronousStrategy().attach(cluster)
        results = [strategy.run_round() for _ in range(5)]
        assert all(np.isfinite(r.mean_loss) for r in results)
        assert cluster.parameter_matrix.dtype == np.float32

    def test_run_result_dtype_survives_the_persistence_round_trip(self):
        result = RunResult(
            strategy="fda",
            workload="blobs",
            reached_target=True,
            accuracy_target=0.9,
            final_accuracy=0.91,
            best_accuracy=0.91,
            communication_bytes=1234,
            parallel_steps=10,
            synchronizations=2,
            evaluations=1,
            dtype="float32",
        )
        restored = result_from_dict(result_to_dict(result))
        assert restored.dtype == "float32"

    def test_seed_era_payloads_without_dtype_still_load(self):
        payload = result_to_dict(
            RunResult(
                strategy="fda",
                workload="blobs",
                reached_target=False,
                accuracy_target=0.9,
                final_accuracy=0.5,
                best_accuracy=0.5,
                communication_bytes=0,
                parallel_steps=0,
                synchronizations=0,
                evaluations=0,
            )
        )
        payload.pop("dtype")
        assert result_from_dict(payload).dtype == "float64"
