"""Tests for the scaled-down paper architectures."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.architectures import densenet_mini, lenet5, mlp, transfer_head, vgg_mini


class TestFactories:
    def test_mlp_shapes(self):
        model = mlp(10, 4, hidden_units=(8, 6), seed=0)
        assert model.output_shape == (4,)
        out = model.forward(np.zeros((2, 10)))
        assert out.shape == (2, 4)

    def test_lenet5_builds_and_runs(self):
        model = lenet5(input_shape=(14, 14, 1), num_classes=10, seed=0)
        out = model.forward(np.zeros((3, 14, 14, 1)))
        assert out.shape == (3, 10)
        assert model.num_parameters > 1000

    def test_vgg_is_larger_than_lenet(self):
        lenet = lenet5(seed=0)
        vgg = vgg_mini(seed=0)
        assert vgg.num_parameters > lenet.num_parameters

    def test_densenet_variants_order_by_size(self):
        small = densenet_mini(blocks=(2, 2), seed=0)
        large = densenet_mini(blocks=(3, 3), seed=0)
        assert large.num_parameters > small.num_parameters

    def test_densenet_forward_and_backward(self):
        model = densenet_mini(input_shape=(10, 10, 3), num_classes=10, seed=0)
        x = np.random.default_rng(0).normal(size=(4, 10, 10, 3))
        loss = model.train_batch(x, np.array([0, 1, 2, 3]))
        assert np.isfinite(loss)
        assert model.num_buffers > 0  # batch-norm running statistics exist

    def test_transfer_head(self):
        model = transfer_head(feature_dim=32, num_classes=20, seed=0)
        out = model.forward(np.zeros((2, 32)))
        assert out.shape == (2, 20)

    def test_scaling_changes_parameter_count(self):
        small = lenet5(scale=0.5, seed=0)
        big = lenet5(scale=2.0, seed=0)
        assert big.num_parameters > small.num_parameters

    def test_relative_sizes_follow_the_paper_ordering(self):
        # Paper ordering: LeNet-5 < VGG16* < DenseNet121 < DenseNet201.
        sizes = [
            lenet5(seed=0).num_parameters,
            vgg_mini(seed=0).num_parameters,
        ]
        assert sizes == sorted(sizes)


class TestValidation:
    def test_mlp_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            mlp(0, 3)
        with pytest.raises(ConfigurationError):
            mlp(4, 1)

    def test_lenet_rejects_single_class(self):
        with pytest.raises(ConfigurationError):
            lenet5(num_classes=1)

    def test_densenet_requires_blocks(self):
        with pytest.raises(ConfigurationError):
            densenet_mini(blocks=())

    def test_transfer_head_rejects_bad_feature_dim(self):
        with pytest.raises(ConfigurationError):
            transfer_head(feature_dim=0, num_classes=5)

    def test_identical_seeds_are_reproducible(self):
        a = vgg_mini(seed=11)
        b = vgg_mini(seed=11)
        np.testing.assert_array_equal(a.get_parameters(), b.get_parameters())
