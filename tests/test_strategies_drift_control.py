"""Tests for the FedProx and SCAFFOLD drift-control baselines."""

import numpy as np
import pytest

from repro.distributed.cluster import CATEGORY_MODEL
from repro.exceptions import ConfigurationError
from repro.experiments.run import TrainingRun
from repro.experiments.setup import build_cluster
from repro.strategies.drift_control import FedProxStrategy, ScaffoldStrategy
from repro.strategies.fedopt import FedOptStrategy
from repro.optim.server import FedAvg


RUN = TrainingRun(accuracy_target=0.88, max_steps=160, eval_every_steps=20)


def run_on(workload, strategy, run=RUN):
    cluster, test_dataset = build_cluster(workload)
    return run.execute(strategy, cluster, test_dataset, workload_name=workload.name)


class TestFedProx:
    def test_round_structure(self, blobs_workload):
        cluster, _ = build_cluster(blobs_workload)
        strategy = FedProxStrategy(mu=0.1).attach(cluster)
        result = strategy.run_round()
        assert result.synchronized
        assert result.steps_advanced == strategy.steps_per_round
        assert cluster.model_variance() == pytest.approx(0.0, abs=1e-18)

    def test_communication_matches_fedavg(self, blobs_workload):
        prox_cluster, _ = build_cluster(blobs_workload)
        avg_cluster, _ = build_cluster(blobs_workload)
        FedProxStrategy(mu=0.1).attach(prox_cluster).run_round()
        FedOptStrategy(FedAvg()).attach(avg_cluster).run_round()
        assert (
            prox_cluster.tracker.bytes_for(CATEGORY_MODEL)
            == avg_cluster.tracker.bytes_for(CATEGORY_MODEL)
        )

    def test_zero_mu_matches_fedavg_updates(self, blobs_workload):
        prox_cluster, _ = build_cluster(blobs_workload)
        avg_cluster, _ = build_cluster(blobs_workload)
        FedProxStrategy(mu=0.0).attach(prox_cluster).run_round()
        FedOptStrategy(FedAvg()).attach(avg_cluster).run_round()
        np.testing.assert_allclose(
            prox_cluster.average_parameters(), avg_cluster.average_parameters(), atol=1e-9
        )

    def test_converges_on_blobs(self, blobs_workload):
        result = run_on(blobs_workload, FedProxStrategy(mu=0.05))
        assert result.reached_target

    def test_proximal_term_limits_drift(self, blobs_workload):
        # With a huge mu the local models barely move from the global model.
        loose_cluster, _ = build_cluster(blobs_workload)
        tight_cluster, _ = build_cluster(blobs_workload)
        loose = FedProxStrategy(mu=0.0).attach(loose_cluster)
        tight = FedProxStrategy(mu=100.0).attach(tight_cluster)
        loose_start = loose_cluster.average_parameters()
        tight_start = tight_cluster.average_parameters()
        loose.run_round()
        tight.run_round()
        loose_move = np.linalg.norm(loose_cluster.average_parameters() - loose_start)
        tight_move = np.linalg.norm(tight_cluster.average_parameters() - tight_start)
        assert tight_move < loose_move

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FedProxStrategy(mu=-1.0)
        with pytest.raises(ConfigurationError):
            FedProxStrategy(local_epochs=0)


class TestScaffold:
    def test_round_structure(self, blobs_workload):
        cluster, _ = build_cluster(blobs_workload)
        strategy = ScaffoldStrategy().attach(cluster)
        result = strategy.run_round()
        assert result.synchronized
        assert cluster.model_variance() == pytest.approx(0.0, abs=1e-18)

    def test_communication_is_twice_fedavg(self, blobs_workload):
        scaffold_cluster, _ = build_cluster(blobs_workload)
        avg_cluster, _ = build_cluster(blobs_workload)
        ScaffoldStrategy().attach(scaffold_cluster).run_round()
        FedOptStrategy(FedAvg()).attach(avg_cluster).run_round()
        assert (
            scaffold_cluster.tracker.bytes_for(CATEGORY_MODEL)
            == 2 * avg_cluster.tracker.bytes_for(CATEGORY_MODEL)
        )

    def test_control_variates_update(self, blobs_workload):
        cluster, _ = build_cluster(blobs_workload)
        strategy = ScaffoldStrategy(local_learning_rate_hint=0.01).attach(cluster)
        strategy.run_round()
        variate_norms = [np.linalg.norm(v) for v in strategy._worker_variates.values()]
        assert all(norm > 0 for norm in variate_norms)
        assert np.linalg.norm(strategy._server_variate) > 0

    def test_converges_on_blobs(self, blobs_workload):
        result = run_on(blobs_workload, ScaffoldStrategy(local_learning_rate_hint=0.01))
        assert result.reached_target

    def test_converges_under_heterogeneity(self, blobs_workload):
        heterogeneous = blobs_workload.with_partition("dirichlet", alpha=0.3)
        result = run_on(
            heterogeneous,
            ScaffoldStrategy(local_learning_rate_hint=0.01),
            TrainingRun(accuracy_target=0.85, max_steps=400, eval_every_steps=20),
        )
        assert result.reached_target

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScaffoldStrategy(local_epochs=0)
        with pytest.raises(ConfigurationError):
            ScaffoldStrategy(local_learning_rate_hint=0.0)
