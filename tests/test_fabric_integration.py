"""Integration tests for the fabric: sync/async parity, topology routing, time.

The headline contract: with a zero-jitter, no-straggler profile and the star
topology, the synchronous and asynchronous FDA trainers must charge identical
model-synchronization bytes for the same number of synchronizations — the
fabric prices the collective, not the protocol that triggered it.
"""

import numpy as np
import pytest

from repro.core.async_fda import AsynchronousFDATrainer
from repro.core.fda import FDATrainer
from repro.core.monitor import ExactMonitor
from repro.core.timeline import StragglerProfile, Timeline
from repro.data.partition import partition_dataset
from repro.data.synthetic import gaussian_blobs
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.comm import NAIVE_COST_MODEL, RING_COST_MODEL
from repro.distributed.worker import Worker
from repro.exceptions import ConfigurationError
from repro.nn.architectures import mlp
from repro.optim.adam import Adam
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.fedopt import fedadam_strategy
from repro.strategies.synchronous import SynchronousStrategy


def make_cluster(num_workers=4, seed=0, **cluster_kwargs):
    data = gaussian_blobs(320, feature_dim=8, num_classes=3, seed=seed)
    shards = partition_dataset(data, num_workers, "iid", seed=seed)
    workers = [
        Worker(
            worker_id=i,
            model=mlp(8, 3, hidden_units=(12,), seed=seed),
            dataset=shard,
            optimizer=Adam(0.02),
            batch_size=16,
            seed=seed + i,
        )
        for i, shard in enumerate(shards)
    ]
    return SimulatedCluster(workers, **cluster_kwargs)


class TestSyncAsyncAccountingParity:
    def test_model_sync_bytes_per_synchronization_match(self):
        # Zero jitter, no stragglers, star topology: the async coordinator and
        # the lockstep trainer must charge the same model-sync bytes per sync.
        sync_trainer = FDATrainer(make_cluster(), ExactMonitor(), threshold=0.0)
        sync_trainer.run_steps(6)
        assert sync_trainer.synchronization_count > 0
        sync_bytes = sync_trainer.cluster.tracker.bytes_for("model-sync")
        per_sync = sync_bytes / sync_trainer.synchronization_count

        async_trainer = AsynchronousFDATrainer(
            make_cluster(),
            ExactMonitor(),
            threshold=0.0,
            profile=StragglerProfile(),  # uniform, jitter-free
            seed=0,
        )
        async_trainer.run_events(24)
        assert async_trainer.synchronization_count > 0
        async_bytes = async_trainer.cluster.tracker.bytes_for("model-sync")
        assert async_bytes / async_trainer.synchronization_count == per_sync

    def test_state_traffic_matches_per_report_across_modes(self):
        # A lockstep step AllReduces K reports at n·4·K bytes; an async upload
        # moves one report at n·4 bytes — identical cost per worker report, so
        # the same number of reports charges the same fda-state total.
        sync_trainer = FDATrainer(make_cluster(), ExactMonitor(), threshold=1e9)
        sync_trainer.run_steps(5)
        async_trainer = AsynchronousFDATrainer(
            make_cluster(), ExactMonitor(), threshold=1e9, seed=0
        )
        async_trainer.run_events(5 * async_trainer.cluster.num_workers)
        sync_state = sync_trainer.cluster.tracker.bytes_for("fda-state")
        async_state = async_trainer.cluster.tracker.bytes_for("fda-state")
        assert async_state == sync_state


class TestTopologyRouting:
    def test_ring_cluster_charges_ring_volume_per_sync(self):
        star = make_cluster()
        ring = make_cluster(topology="ring")
        star.synchronize(include_buffers=False)
        ring.synchronize(include_buffers=False)
        d, K = star.model_dimension, star.num_workers
        # Clusters price at the plane dtype's itemsize (float64 → 8 B), so the
        # closed forms are the 4-byte reference models scaled by 2.
        assert star.tracker.bytes_for("model-sync") == 2 * NAIVE_COST_MODEL.allreduce_bytes(d, K)
        assert ring.tracker.bytes_for("model-sync") == 2 * RING_COST_MODEL.allreduce_bytes(d, K)

    def test_topology_name_resolution_on_the_cluster(self):
        assert make_cluster().fabric.topology.name == "star"
        assert make_cluster(topology="gossip").fabric.topology.name == "gossip"
        with pytest.raises(ConfigurationError):
            make_cluster(topology="torus")

    def test_server_based_strategy_rejects_serverless_topology(self):
        cluster = make_cluster(topology="ring")
        with pytest.raises(ConfigurationError):
            fedadam_strategy().attach(cluster)

    def test_allreduce_strategies_run_on_every_topology(self):
        for topology in ("star", "ring", "hierarchical", "gossip"):
            cluster = make_cluster(topology=topology)
            strategy = SynchronousStrategy().attach(cluster)
            result = strategy.run_round()
            assert result.communication_bytes > 0

    def test_mismatched_timeline_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cluster(num_workers=4, timeline=Timeline(3))


class TestVirtualTime:
    def test_default_clock_counts_compute_only(self):
        cluster = make_cluster()
        strategy = SynchronousStrategy().attach(cluster)
        rounds = [strategy.run_round() for _ in range(3)]
        assert cluster.virtual_time == pytest.approx(3.0)  # one second per step
        assert cluster.timeline.comm_seconds == 0.0
        assert all(r.virtual_seconds == pytest.approx(1.0) for r in rounds)

    def test_network_model_adds_communication_time(self):
        timeless = make_cluster()
        timed = make_cluster(network="fl")
        for cluster in (timeless, timed):
            SynchronousStrategy().attach(cluster).run_round()
        assert timed.virtual_time > timeless.virtual_time
        assert timed.timeline.comm_seconds > 0
        # Same protocol, same traffic — only the clock differs.
        assert timed.total_bytes == timeless.total_bytes

    def test_fl_slower_than_hpc_for_the_same_protocol(self):
        fl = make_cluster(network="fl")
        hpc = make_cluster(network="hpc")
        for cluster in (fl, hpc):
            SynchronousStrategy().attach(cluster).run_round()
        assert fl.virtual_time > hpc.virtual_time

    def test_straggler_timeline_slows_lockstep_rounds(self):
        profile = StragglerProfile(straggler_fraction=0.25, straggler_factor=4.0)
        slow = make_cluster(timeline=Timeline(4, profile=profile, seed=0))
        fast = make_cluster()
        SynchronousStrategy().attach(slow).run_round()
        SynchronousStrategy().attach(fast).run_round()
        assert slow.virtual_time == pytest.approx(4.0)
        assert fast.virtual_time == pytest.approx(1.0)

    def test_fda_step_reports_virtual_time(self):
        trainer = FDATrainer(make_cluster(), ExactMonitor(), threshold=0.5)
        results = trainer.run_steps(4)
        times = [r.virtual_time for r in results]
        assert times == sorted(times)
        assert times[-1] == pytest.approx(trainer.cluster.virtual_time)
        assert all(r.active_workers == 4 for r in results)


class TestPartialParticipation:
    def test_dropout_reduces_active_workers_but_training_proceeds(self):
        timeline = Timeline(4, seed=5, dropout_rate=0.5)
        cluster = make_cluster(timeline=timeline)
        trainer = FDATrainer(cluster, ExactMonitor(), threshold=0.5)
        results = trainer.run_steps(12)
        active_counts = [r.active_workers for r in results]
        assert min(active_counts) >= 1
        assert any(count < 4 for count in active_counts)
        assert all(np.isfinite(r.mean_loss) for r in results)

    def test_default_timeline_keeps_everyone_active(self):
        trainer = FDATrainer(make_cluster(), ExactMonitor(), threshold=0.5)
        results = trainer.run_steps(5)
        assert all(r.active_workers == 4 for r in results)


class TestTimelineOwnership:
    def test_async_trainer_inherits_a_configured_cluster_timeline(self):
        profile = StragglerProfile(straggler_fraction=0.25, straggler_factor=4.0)
        timeline = Timeline(4, profile=profile, seed=0)
        cluster = make_cluster(timeline=timeline)
        trainer = AsynchronousFDATrainer(cluster, ExactMonitor(), threshold=1e9)
        assert trainer.timeline is timeline  # with_timeline config is honoured
        trainer.run_for(30.0)
        steps = np.asarray(trainer.steps_by_worker())
        assert steps.max() > 2 * steps.min()  # the straggler actually straggles

    def test_explicit_profile_still_overrides(self):
        cluster = make_cluster()
        default_timeline = cluster.timeline
        profile = StragglerProfile(straggler_fraction=0.5, straggler_factor=3.0)
        trainer = AsynchronousFDATrainer(
            cluster, ExactMonitor(), threshold=1e9, profile=profile, seed=1
        )
        assert trainer.timeline is not default_timeline
        assert cluster.timeline is trainer.timeline
        assert trainer.profile is profile

    def test_mismatched_explicit_timeline_rejected(self):
        with pytest.raises(ConfigurationError):
            AsynchronousFDATrainer(
                make_cluster(num_workers=4), ExactMonitor(), 1.0, timeline=Timeline(3)
            )

    def test_async_upload_seconds_land_in_both_comm_ledgers(self):
        cluster = make_cluster(network="fl")
        trainer = AsynchronousFDATrainer(cluster, ExactMonitor(), threshold=1e9, seed=0)
        trainer.run_events(8)
        assert cluster.fabric.comm_seconds > 0
        assert cluster.timeline.comm_seconds == pytest.approx(cluster.fabric.comm_seconds)


class TestWorkloadCopyHelpers:
    def test_with_fabric_preserves_the_unspecified_axis(self, blobs_workload):
        configured = blobs_workload.with_fabric(topology="ring", network="fl")
        retopologized = configured.with_fabric(topology="hierarchical")
        assert retopologized.network == "fl"  # not silently reset
        renetworked = configured.with_fabric(network="hpc")
        assert renetworked.topology == "ring"
        reset = configured.with_fabric(topology=None, network=None)
        assert reset.topology is None and reset.network is None

    def test_with_timeline_preserves_the_unspecified_field(self, blobs_workload):
        profile = StragglerProfile(straggler_fraction=0.5)
        configured = blobs_workload.with_timeline(compute_profile=profile)
        dropped = configured.with_timeline(dropout_rate=0.3)
        assert dropped.compute_profile is profile
        assert dropped.dropout_rate == 0.3


class TestFabricSweep:
    def test_run_fabric_spec_executes_every_cell(self, blobs_workload):
        from repro.experiments.registry import ExperimentSpec
        from repro.experiments.run import TrainingRun
        from repro.experiments.sweep import run_fabric_spec

        spec = ExperimentSpec(
            experiment_id="fabric-test",
            title="tiny fabric grid",
            workloads={"iid": blobs_workload},
            strategy_factories={
                "Synchronous": lambda: SynchronousStrategy(),
                "LinearFDA": lambda: FDAStrategy(threshold=2.0, variant="linear"),
            },
            run=TrainingRun(accuracy_target=0.999, max_steps=8, eval_every_steps=8),
            topologies=("star", "ring"),
            networks=("hpc",),
        )
        grouped = run_fabric_spec(spec)
        assert set(grouped) == {"Synchronous", "LinearFDA"}
        for points in grouped.values():
            assert [(p.topology, p.network) for p in points] == [
                ("star", "hpc"), ("ring", "hpc"),
            ]
            assert all(p.virtual_seconds > 0 for p in points)

    def test_run_fabric_spec_requires_a_grid(self):
        from repro.experiments.registry import figure3
        from repro.experiments.sweep import run_fabric_spec

        with pytest.raises(ConfigurationError):
            run_fabric_spec(figure3(quick=True))  # no topologies/networks declared
    def test_sweep_fabric_covers_the_grid(self, blobs_workload):
        from repro.experiments.run import TrainingRun
        from repro.experiments.sweep import sweep_fabric

        run = TrainingRun(accuracy_target=0.999, max_steps=8, eval_every_steps=8)
        points = sweep_fabric(
            blobs_workload,
            run,
            lambda: SynchronousStrategy(),
            topologies=("star", "ring"),
            networks=("fl", "hpc"),
        )
        assert [(p.topology, p.network) for p in points] == [
            ("star", "fl"), ("star", "hpc"), ("ring", "fl"), ("ring", "hpc"),
        ]
        for point in points:
            assert point.result.topology == point.topology
            assert point.result.network == point.network
            assert point.bytes_by_category["model-sync"] > 0
            assert point.virtual_seconds > 0
            assert point.seconds_per_round > 0
        by_cell = {(p.topology, p.network): p for p in points}
        # Per-cell wall-clock reflects the fabric: fl slower than hpc.
        assert by_cell[("star", "fl")].virtual_seconds > by_cell[("star", "hpc")].virtual_seconds

    def test_registry_fabric_spec_declares_the_grid(self):
        from repro.experiments.registry import fabric_sweep

        spec = fabric_sweep(quick=True)
        assert spec.topologies and spec.networks
        assert "LinearFDA" in spec.strategy_factories
        assert "Synchronous" in spec.strategy_factories
        full = fabric_sweep(quick=False)
        assert len(full.topologies) * len(full.networks) > len(spec.topologies) * len(
            spec.networks
        )

    def test_cli_fabric_command(self, capsys):
        from repro.cli import main

        exit_code = main(
            [
                "fabric",
                "--workload", "lenet",
                "--workers", "3",
                "--target", "0.999",
                "--max-steps", "20",
                "--topologies", "star",
                "--networks", "fl", "hpc",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "LinearFDA" in output and "Synchronous" in output
        assert "wall-clock" in output and "star" in output

    def test_run_result_serialization_round_trips_fabric_fields(self, tmp_path, blobs_workload):
        from repro.experiments.persistence import load_results, save_results
        from repro.experiments.run import TrainingRun
        from repro.experiments.setup import build_cluster

        workload = blobs_workload.with_fabric(topology="ring", network="fl")
        cluster, test_dataset = build_cluster(workload)
        run = TrainingRun(accuracy_target=0.999, max_steps=8, eval_every_steps=8)
        result = run.execute(SynchronousStrategy(), cluster, test_dataset)
        path = save_results([result], tmp_path / "results.json")
        loaded = load_results(path)[0]
        assert loaded.topology == "ring"
        assert loaded.network == "fl"
        assert loaded.virtual_seconds == pytest.approx(result.virtual_seconds)
        assert loaded.comm_seconds == pytest.approx(result.comm_seconds)


class TestVectorizedAllreduce:
    def test_matrix_fast_path_matches_list_path(self):
        cluster = make_cluster(num_workers=3)
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(3, 17))
        from_list = cluster.allreduce([row for row in matrix], "other")
        from_matrix = cluster.allreduce(matrix, "other")
        np.testing.assert_array_equal(from_list, from_matrix)
        # Both paths charged the same bytes.
        assert cluster.tracker.bytes_for("other") == 2 * 17 * 8 * 3

    def test_matrix_fast_path_validates_row_count(self):
        from repro.exceptions import CommunicationError

        cluster = make_cluster(num_workers=3)
        with pytest.raises(CommunicationError):
            cluster.allreduce(np.zeros((2, 5)), "other")

    def test_matrix_fast_path_avoids_copy_for_float64(self):
        cluster = make_cluster(num_workers=3)
        matrix = np.ones((3, 8), dtype=np.float64)
        result = cluster.allreduce(matrix, "other")
        np.testing.assert_allclose(result, 1.0)
