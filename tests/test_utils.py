"""Tests for the utility helpers (RNG, validation, formatting, run log)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.formatting import format_bytes, format_count, format_duration
from repro.utils.rng import RngFactory, as_rng, spawn_rngs
from repro.utils.runlog import RunLogger
from repro.utils.validation import (
    check_choice,
    check_fraction,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestRng:
    def test_as_rng_accepts_int_none_generator(self):
        assert isinstance(as_rng(3), np.random.Generator)
        assert isinstance(as_rng(None), np.random.Generator)
        generator = np.random.default_rng(0)
        assert as_rng(generator) is generator

    def test_as_rng_deterministic(self):
        assert as_rng(5).integers(0, 100, 10).tolist() == as_rng(5).integers(0, 100, 10).tolist()

    def test_spawn_rngs_independent_and_deterministic(self):
        a = [g.integers(0, 1000) for g in spawn_rngs(1, 4)]
        b = [g.integers(0, 1000) for g in spawn_rngs(1, 4)]
        assert a == b
        assert len(set(a)) > 1

    def test_spawn_rngs_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_factory_named_streams_are_stable(self):
        factory = RngFactory(7)
        first = factory.named("data").integers(0, 10_000)
        second = RngFactory(7).named("data").integers(0, 10_000)
        assert first == second

    def test_factory_different_labels_differ(self):
        factory = RngFactory(7)
        streams = [factory.named(label).integers(0, 10**9) for label in ("a", "b", "ab", "ba")]
        assert len(set(streams)) == len(streams)

    def test_factory_worker_streams(self):
        factory = RngFactory(0)
        assert factory.worker(0).integers(0, 10**9) != factory.worker(1).integers(0, 10**9)
        with pytest.raises(ValueError):
            factory.worker(-1)


class TestValidation:
    def test_check_positive(self):
        assert check_positive(2.5, "x") == 2.5
        with pytest.raises(ConfigurationError):
            check_positive(0, "x")
        with pytest.raises(ConfigurationError):
            check_positive("3", "x")

    def test_check_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ConfigurationError):
            check_non_negative(-1e-9, "x")

    def test_check_positive_int(self):
        assert check_positive_int(3, "k") == 3
        with pytest.raises(ConfigurationError):
            check_positive_int(0, "k")
        with pytest.raises(ConfigurationError):
            check_positive_int(2.5, "k")
        with pytest.raises(ConfigurationError):
            check_positive_int(True, "k")

    def test_check_non_negative_int(self):
        assert check_non_negative_int(0, "k") == 0
        with pytest.raises(ConfigurationError):
            check_non_negative_int(-1, "k")

    def test_check_fraction_and_probability(self):
        assert check_fraction(0.5, "f") == 0.5
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ConfigurationError):
            check_fraction(1.5, "f")
        with pytest.raises(ConfigurationError):
            check_probability(-0.1, "p")

    def test_check_choice(self):
        assert check_choice("a", {"a", "b"}, "mode") == "a"
        with pytest.raises(ConfigurationError):
            check_choice("c", {"a", "b"}, "mode")


class TestFormatting:
    def test_format_bytes_units(self):
        assert format_bytes(0) == "0.00 B"
        assert format_bytes(1500) == "1.50 KB"
        assert format_bytes(2.5e9) == "2.50 GB"

    def test_format_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            format_bytes(-1)

    def test_format_count(self):
        assert format_count(950) == "950"
        assert format_count(1500) == "1.5K"
        assert format_count(2_000_000) == "2M"

    def test_format_duration(self):
        assert format_duration(12.3) == "12.30 s"
        assert format_duration(65) == "1m 05.0s"
        assert format_duration(3661) == "1h 01m 01.0s"
        with pytest.raises(ValueError):
            format_duration(-5)


class TestRunLogger:
    def test_log_and_series(self):
        logger = RunLogger("test")
        logger.log(step=1, accuracy=0.5)
        logger.log(step=2, accuracy=0.75)
        assert len(logger) == 2
        assert logger.series("accuracy") == [0.5, 0.75]
        assert logger.last("accuracy") == 0.75

    def test_last_with_missing_key(self):
        logger = RunLogger()
        logger.log(step=1)
        assert logger.last("accuracy", default=-1) == -1

    def test_keys_union(self):
        logger = RunLogger()
        logger.log(a=1)
        logger.log(b=2)
        assert logger.keys() == ["a", "b"]

    def test_to_table_renders_all_rows(self):
        logger = RunLogger()
        logger.log(step=1, loss=0.123456)
        logger.log(step=2, loss=0.1)
        table = logger.to_table()
        assert "step" in table and "loss" in table
        assert len(table.splitlines()) == 3

    def test_to_table_empty(self):
        assert "empty" in RunLogger("x").to_table()

    def test_indexing_and_iteration(self):
        logger = RunLogger()
        logger.log(a=1)
        assert logger[0]["a"] == 1
        assert [entry["a"] for entry in logger] == [1]
