"""Parity pins for the serving plane.

Two contracts, both asserted on *both* execution engines:

* **Golden Poisson fixture** — a small open-loop Poisson-arrival FDA run has
  its sync count, byte ledger, virtual clock, and p50/p95/p99 latency digits
  frozen here.  Any change to arrival draws, queue ordering, staleness
  weighting, upload charging, or the timeline tie-break shifts at least one
  pinned digit and fails loudly.
* **Degenerate-mode bit-exactness** — ``ServingConfig(arrival="closed")``
  (no exogenous arrivals, unbounded queue, instant service) must reproduce
  the pre-serving :class:`~repro.core.async_fda.AsynchronousFDATrainer`
  trajectory *bit-exactly*: identical parameters on every worker, identical
  event streams, identical byte and clock ledgers.
"""

import numpy as np
import pytest

from repro.core.async_fda import AsynchronousFDATrainer
from repro.core.monitor import make_monitor
from repro.core.timeline import StragglerProfile
from repro.data.datasets import Dataset
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.worker import Worker
from repro.nn.architectures import mlp
from repro.optim.adam import Adam
from repro.serving import ServedFDATrainer, ServingConfig

pytestmark = pytest.mark.serving

ENGINES = ["sequential", "batched"]


def build_cluster(execution, **cluster_kwargs):
    rng = np.random.default_rng(7)
    workers = []
    for worker_id in range(4):
        x = rng.normal(size=(40, 6))
        y = rng.integers(0, 3, size=40)
        workers.append(
            Worker(
                worker_id,
                mlp(6, 3, hidden_units=(10,), seed=11),
                Dataset(x, y, 3),
                Adam(0.01),
                batch_size=8,
                seed=worker_id,
            )
        )
    return SimulatedCluster(workers, execution=execution, **cluster_kwargs)


#: Frozen digits of the golden Poisson run (150 updates, K=4, star x fl,
#: rate 0.5/worker, queue 64/drop, staleness-weighted, 50 ms service,
#: linear monitor, theta = 0.05, arrival seed 2026).
GOLDEN = {
    "sync_count": 6,
    "total_bytes": 22176,
    "updates_served": 150,
    "updates_offered": 150,
    "virtual_seconds": 70.34103951051148,
    "p50": 0.04999999999999982,
    "p95": 0.08595376964713072,
    "p99": 0.12407261982686359,
}


def run_golden(execution):
    cluster = build_cluster(execution, topology="star", network="fl")
    monitor = make_monitor("linear", cluster.model_dimension, seed=3)
    config = ServingConfig(
        arrival="poisson",
        arrival_rate=0.5,
        queue_capacity=64,
        queue_policy="drop",
        staleness_rule="staleness-weighted",
        service_seconds=0.05,
        arrival_seed=2026,
    )
    trainer = ServedFDATrainer(cluster, monitor, 0.05, config)
    trainer.serve_updates(150)
    return trainer


class TestGoldenPoissonFixture:
    @pytest.mark.parametrize("execution", ENGINES)
    def test_golden_run_digits_are_frozen(self, execution):
        report = run_golden(execution).report()
        assert report.sync_count == GOLDEN["sync_count"]
        assert report.total_bytes == GOLDEN["total_bytes"]
        assert report.updates_served == GOLDEN["updates_served"]
        assert report.updates_offered == GOLDEN["updates_offered"]
        assert report.virtual_seconds == GOLDEN["virtual_seconds"]
        assert report.latency["p50"] == GOLDEN["p50"]
        assert report.latency["p95"] == GOLDEN["p95"]
        assert report.latency["p99"] == GOLDEN["p99"]

    def test_both_engines_agree_bit_exactly(self):
        sequential = run_golden("sequential")
        batched = run_golden("batched")
        np.testing.assert_array_equal(
            sequential.cluster.parameter_matrix, batched.cluster.parameter_matrix
        )
        assert sequential.cluster.total_bytes == batched.cluster.total_bytes
        assert sequential.latency.ledger.values().tolist() == (
            batched.latency.ledger.values().tolist()
        )


class TestDegenerateModeBitExactness:
    @pytest.mark.parametrize("execution", ENGINES)
    def test_closed_mode_reproduces_async_trainer(self, execution):
        events = 60
        profile = StragglerProfile(straggler_fraction=0.25, straggler_factor=3.0)

        reference_cluster = build_cluster(execution, topology="star", network="fl")
        reference_monitor = make_monitor("linear", reference_cluster.model_dimension, seed=3)
        reference = AsynchronousFDATrainer(
            reference_cluster, reference_monitor, threshold=0.05,
            profile=profile, seed=5,
        )
        reference.run_events(events)

        served_cluster = build_cluster(execution, topology="star", network="fl")
        served_monitor = make_monitor("linear", served_cluster.model_dimension, seed=3)
        served = ServedFDATrainer(
            served_cluster, served_monitor, 0.05, ServingConfig(arrival="closed"),
            profile=profile, seed=5,
        )
        assert served.serve_updates(events) == events

        # Bit-exact parameters, clock, byte ledger, and event stream.
        np.testing.assert_array_equal(
            reference_cluster.parameter_matrix, served_cluster.parameter_matrix
        )
        assert reference.virtual_time == served.virtual_time
        assert reference_cluster.total_bytes == served_cluster.total_bytes
        assert reference.synchronization_count == served.sync_count
        assert len(reference.events) == len(served._inner.events)
        for expected, actual in zip(reference.events, served._inner.events):
            assert (expected.time, expected.worker_id, expected.step_index) == (
                actual.time, actual.worker_id, actual.step_index
            )
            assert expected.synchronized == actual.synchronized
            # NaN-aware: the estimate is NaN until every worker has reported.
            np.testing.assert_array_equal(
                expected.variance_estimate, actual.variance_estimate
            )

    @pytest.mark.parametrize("execution", ENGINES)
    def test_closed_mode_latency_is_identically_zero(self, execution):
        cluster = build_cluster(execution)
        monitor = make_monitor("linear", cluster.model_dimension, seed=3)
        served = ServedFDATrainer(
            cluster, monitor, 0.05, ServingConfig(arrival="closed")
        )
        served.serve_updates(20)
        summary = served.latency.summary()
        assert summary["count"] == 20
        assert summary["p99"] == 0.0
        assert summary["max"] == 0.0
        assert served.queue.conservation_holds()


class TestOpenLoopInvariants:
    @pytest.mark.parametrize("execution", ENGINES)
    def test_uniform_rule_matches_unweighted_averaging(self, execution):
        """The uniform rule must take the exact np.mean path (None weights)."""

        def run(rule):
            cluster = build_cluster(execution)
            monitor = make_monitor("linear", cluster.model_dimension, seed=3)
            config = ServingConfig(
                arrival="deterministic", arrival_rate=1.0, staleness_rule=rule
            )
            trainer = ServedFDATrainer(cluster, monitor, 0.05, config)
            trainer.serve_updates(80)
            return trainer

        uniform = run("uniform")
        # With deterministic arrivals and instant service no update is ever
        # stale, so staleness-weighted weights are all equal and the weighted
        # path must land on the same synchronization schedule.
        weighted = run("staleness-weighted")
        assert uniform.sync_count == weighted.sync_count
        np.testing.assert_allclose(
            uniform.cluster.parameter_matrix,
            weighted.cluster.parameter_matrix,
            rtol=0,
            atol=1e-12,
        )

    def test_saturation_inflates_tail_latency(self):
        def run(rate):
            cluster = build_cluster("sequential")
            monitor = make_monitor("linear", cluster.model_dimension, seed=3)
            config = ServingConfig(
                arrival="poisson",
                arrival_rate=rate,
                staleness_rule="uniform",
                service_seconds=0.4,
            )
            trainer = ServedFDATrainer(cluster, monitor, float("inf"), config)
            trainer.serve_updates(200)
            return trainer.report()

        # Aggregate service rate is 1/0.4 = 2.5 updates/s; K=4 workers at
        # 0.25/s offer 1.0/s (stable), at 2.5/s offer 10/s (4x overload).
        stable = run(0.25)
        saturated = run(2.5)
        assert saturated.latency["p99"] > 10 * stable.latency["p99"]
        assert saturated.max_queue_depth > 10 * max(stable.max_queue_depth, 1)
