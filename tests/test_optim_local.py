"""Tests for the local optimizers (SGD, Adam, AdamW) and learning-rate schedules."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.optim.adam import Adam, AdamW
from repro.optim.schedules import (
    ConstantSchedule,
    CosineDecaySchedule,
    ExponentialDecaySchedule,
    StepDecaySchedule,
    resolve_schedule,
)
from repro.optim.sgd import SGD


def quadratic_minimization(optimizer, start, steps=300):
    """Minimize f(w) = ||w - 3||^2 with the given optimizer; return the final point."""
    params = np.asarray(start, dtype=np.float64)
    target = np.full_like(params, 3.0)
    for _ in range(steps):
        grads = 2.0 * (params - target)
        params = optimizer.step(params, grads)
    return params


class TestSGD:
    def test_plain_sgd_step(self):
        optimizer = SGD(learning_rate=0.1)
        updated = optimizer.step(np.array([1.0, 2.0]), np.array([1.0, -1.0]))
        np.testing.assert_allclose(updated, [0.9, 2.1])

    def test_converges_on_quadratic(self):
        final = quadratic_minimization(SGD(0.05), np.array([10.0, -4.0]))
        np.testing.assert_allclose(final, 3.0, atol=1e-3)

    def test_momentum_accelerates(self):
        plain = quadratic_minimization(SGD(0.01), np.array([10.0]), steps=50)
        momentum = quadratic_minimization(SGD(0.01, momentum=0.9), np.array([10.0]), steps=50)
        assert abs(momentum[0] - 3.0) < abs(plain[0] - 3.0)

    def test_nesterov_converges(self):
        final = quadratic_minimization(
            SGD(0.02, momentum=0.9, nesterov=True), np.array([10.0]), steps=200
        )
        np.testing.assert_allclose(final, 3.0, atol=1e-2)

    def test_weight_decay_shrinks_parameters(self):
        optimizer = SGD(learning_rate=0.1, weight_decay=0.5)
        updated = optimizer.step(np.array([2.0]), np.array([0.0]))
        assert updated[0] < 2.0

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ConfigurationError):
            SGD(0.1, momentum=0.0, nesterov=True)

    def test_reset_clears_velocity(self):
        optimizer = SGD(0.1, momentum=0.9)
        optimizer.step(np.array([1.0]), np.array([1.0]))
        optimizer.reset()
        assert optimizer.step_count == 0
        assert optimizer._velocity is None

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            SGD(0.1).step(np.zeros(3), np.zeros(4))

    def test_accepts_flat_vectors_and_stacked_matrices_only(self):
        # A (K, d) matrix is K independent per-worker updates (the batched
        # engine's layout); anything deeper is rejected.
        stacked = SGD(0.1).step(np.ones((2, 3)), np.ones((2, 3)))
        np.testing.assert_array_equal(stacked, np.full((2, 3), 0.9))
        with pytest.raises(ShapeError):
            SGD(0.1).step(np.zeros((2, 2, 2)), np.zeros((2, 2, 2)))

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: SGD(0.05, weight_decay=1e-3),
            lambda: SGD(0.05, momentum=0.9, nesterov=True),
            lambda: Adam(0.01),
            lambda: AdamW(0.01, weight_decay=0.01),
        ],
        ids=["sgd-wd", "sgd-nesterov", "adam", "adamw"],
    )
    def test_stacked_step_inplace_matches_per_row_steps(self, factory):
        # Row k of a stacked (K, d) in-place update must be bit-identical to a
        # flat update of that row alone — the invariant the batched engine
        # relies on when one optimizer instance serves the whole cluster.
        rng = np.random.default_rng(3)
        start = rng.normal(size=(4, 64))
        grads = [rng.normal(size=(4, 64)) for _ in range(5)]
        stacked_opt = factory()
        stacked = start.copy()
        for step_grads in grads:
            stacked_opt.step_inplace(stacked, step_grads)
        for row in range(start.shape[0]):
            row_opt = factory()
            flat = start[row].copy()
            for step_grads in grads:
                row_opt.step_inplace(flat, step_grads[row])
            np.testing.assert_array_equal(stacked[row], flat)

    def test_shape_switch_after_stepping_requires_reset(self):
        # Reusing a stepped optimizer with a different parameter layout would
        # silently zero its moments while step_count kept counting; both
        # stepping entry points enforce the bound layout, in either order.
        optimizer = Adam(0.01)
        optimizer.step_inplace(np.zeros(8), np.ones(8))
        with pytest.raises(ShapeError, match="reset"):
            optimizer.step_inplace(np.zeros((2, 8)), np.ones((2, 8)))
        with pytest.raises(ShapeError, match="reset"):
            optimizer.step(np.zeros((2, 8)), np.ones((2, 8)))
        optimizer.reset()
        optimizer.step_inplace(np.zeros((2, 8)), np.ones((2, 8)))  # now fine

        copy_path = Adam(0.01)
        copy_path.step(np.zeros(8), np.ones(8))
        with pytest.raises(ShapeError, match="reset"):
            copy_path.step_inplace(np.zeros((2, 8)), np.ones((2, 8)))


class TestAdam:
    def test_converges_on_quadratic(self):
        final = quadratic_minimization(Adam(0.1), np.array([10.0, -5.0]))
        np.testing.assert_allclose(final, 3.0, atol=1e-2)

    def test_first_step_size_close_to_learning_rate(self):
        optimizer = Adam(learning_rate=0.001)
        updated = optimizer.step(np.array([1.0]), np.array([1e-3]))
        # Bias correction makes the first step approximately the learning rate.
        assert abs(updated[0] - 1.0) == pytest.approx(0.001, rel=0.05)

    def test_step_counts_advance(self):
        optimizer = Adam(0.01)
        optimizer.step(np.zeros(2), np.ones(2))
        optimizer.step(np.zeros(2), np.ones(2))
        assert optimizer.step_count == 2

    def test_invalid_betas(self):
        with pytest.raises(ConfigurationError):
            Adam(0.01, beta1=1.0)
        with pytest.raises(ConfigurationError):
            Adam(0.01, beta2=-0.1)

    def test_state_dict_contains_hyperparameters(self):
        state = Adam(0.01, beta1=0.8).state_dict()
        assert state["beta1"] == 0.8 and "step_count" in state


class TestAdamW:
    def test_decay_shrinks_parameters_without_gradient(self):
        optimizer = AdamW(learning_rate=0.1, weight_decay=0.1)
        updated = optimizer.step(np.array([5.0]), np.array([0.0]))
        assert updated[0] < 5.0

    def test_zero_decay_matches_adam(self):
        params = np.array([1.0, -2.0])
        grads = np.array([0.5, 0.25])
        adam = Adam(0.01).step(params, grads)
        adamw = AdamW(0.01, weight_decay=0.0).step(params, grads)
        np.testing.assert_allclose(adam, adamw)

    def test_negative_decay_rejected(self):
        with pytest.raises(ConfigurationError):
            AdamW(0.01, weight_decay=-1.0)


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.5)
        assert schedule(0) == schedule(1000) == 0.5

    def test_step_decay(self):
        schedule = StepDecaySchedule(1.0, every=10, decay=0.5)
        assert schedule(0) == 1.0
        assert schedule(10) == 0.5
        assert schedule(25) == 0.25

    def test_exponential_decay_monotone(self):
        schedule = ExponentialDecaySchedule(1.0, rate=0.9, scale=10)
        values = [schedule(step) for step in range(0, 100, 10)]
        assert values == sorted(values, reverse=True)

    def test_cosine_decay_endpoints(self):
        schedule = CosineDecaySchedule(1.0, total_steps=100, minimum=0.1)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(100) == pytest.approx(0.1)
        assert schedule(1000) == pytest.approx(0.1)

    def test_resolve_schedule(self):
        assert isinstance(resolve_schedule(0.1), ConstantSchedule)
        schedule = CosineDecaySchedule(1.0, 10)
        assert resolve_schedule(schedule) is schedule
        with pytest.raises(ConfigurationError):
            resolve_schedule("fast")

    def test_optimizer_follows_schedule(self):
        optimizer = SGD(StepDecaySchedule(1.0, every=1, decay=0.5))
        assert optimizer.learning_rate == 1.0
        optimizer.step(np.zeros(1), np.zeros(1))
        assert optimizer.learning_rate == 0.5
