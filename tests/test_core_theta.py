"""Tests for Θ selection: the paper guideline, the slope fit, calibration, dynamic Θ."""

import numpy as np
import pytest

from repro.core.theta import (
    DynamicThetaController,
    PAPER_THETA_SLOPES,
    ThetaGuideline,
    calibrate_theta,
    fit_theta_slope,
    theta_guideline,
)
from repro.exceptions import ConfigurationError


class TestGuideline:
    def test_paper_slopes_available(self):
        assert set(PAPER_THETA_SLOPES) == {"fl", "balanced", "hpc"}

    def test_linear_in_dimension(self):
        assert theta_guideline(2_000_000, "fl") == pytest.approx(2 * theta_guideline(1_000_000, "fl"))

    def test_fl_recommends_larger_theta_than_hpc(self):
        d = 6_900_000  # DenseNet121
        assert theta_guideline(d, "fl") > theta_guideline(d, "balanced") > theta_guideline(d, "hpc")

    def test_matches_paper_example(self):
        # Figure 12: Theta_FL = 4.91e-5 * d.
        assert theta_guideline(1_000_000, "fl") == pytest.approx(49.1, rel=1e-6)

    def test_unknown_setting(self):
        with pytest.raises(ConfigurationError):
            theta_guideline(1000, "wifi")

    def test_invalid_dimension(self):
        with pytest.raises(ConfigurationError):
            theta_guideline(0, "fl")

    def test_guideline_dataclass_validation(self):
        with pytest.raises(ConfigurationError):
            ThetaGuideline("bad", 0.0)


class TestFitThetaSlope:
    def test_recovers_exact_linear_relationship(self):
        dims = [1000, 5000, 20_000, 100_000]
        slope_true = 3.3e-4
        thetas = [slope_true * d for d in dims]
        slope, r_squared = fit_theta_slope(dims, thetas)
        assert slope == pytest.approx(slope_true, rel=1e-9)
        assert r_squared == pytest.approx(1.0)

    def test_noisy_fit_still_close(self):
        rng = np.random.default_rng(0)
        dims = np.array([1e3, 1e4, 1e5, 1e6])
        thetas = 5e-5 * dims * (1 + rng.normal(scale=0.1, size=4))
        slope, r_squared = fit_theta_slope(dims, thetas)
        assert slope == pytest.approx(5e-5, rel=0.2)
        assert r_squared > 0.8

    def test_requires_two_points(self):
        with pytest.raises(ConfigurationError):
            fit_theta_slope([100], [1.0])

    def test_requires_positive_dimensions(self):
        with pytest.raises(ConfigurationError):
            fit_theta_slope([0, 10], [1.0, 2.0])

    def test_requires_equal_lengths(self):
        with pytest.raises(ConfigurationError):
            fit_theta_slope([1, 2, 3], [1.0, 2.0])


class TestCalibrateTheta:
    def test_scales_with_target_interval(self):
        norms = [0.5, 0.6, 0.4]
        assert calibrate_theta(norms, 40) == pytest.approx(2 * calibrate_theta(norms, 20))

    def test_uses_median(self):
        assert calibrate_theta([1.0, 1.0, 100.0], 10) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            calibrate_theta([], 10)
        with pytest.raises(ConfigurationError):
            calibrate_theta([1.0], 0)
        with pytest.raises(ConfigurationError):
            calibrate_theta([-1.0], 10)


class TestDynamicThetaController:
    def test_increases_theta_when_over_budget(self):
        controller = DynamicThetaController(target_bytes_per_step=10, window=3, adjustment=2.0)
        theta = 1.0
        for _ in range(3):
            theta = controller.update(theta, step_bytes=100, synchronized=True)
        assert theta == pytest.approx(2.0)

    def test_decreases_theta_when_under_budget(self):
        controller = DynamicThetaController(target_bytes_per_step=1000, window=2, adjustment=2.0)
        theta = 8.0
        for _ in range(2):
            theta = controller.update(theta, step_bytes=1, synchronized=False)
        assert theta == pytest.approx(4.0)

    def test_no_adjustment_before_window_fills(self):
        controller = DynamicThetaController(target_bytes_per_step=10, window=5)
        assert controller.update(3.0, step_bytes=100, synchronized=True) == 3.0
        assert controller.adjustment_count == 0

    def test_respects_bounds(self):
        controller = DynamicThetaController(
            target_bytes_per_step=10, window=1, adjustment=10.0, min_theta=0.5, max_theta=2.0
        )
        assert controller.update(1.0, step_bytes=1e9, synchronized=True) == 2.0
        assert controller.update(1.0, step_bytes=0.0, synchronized=False) == 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DynamicThetaController(target_bytes_per_step=0)
        with pytest.raises(ConfigurationError):
            DynamicThetaController(10, window=0)
        with pytest.raises(ConfigurationError):
            DynamicThetaController(10, adjustment=1.0)
        with pytest.raises(ConfigurationError):
            DynamicThetaController(10, min_theta=2.0, max_theta=1.0)
