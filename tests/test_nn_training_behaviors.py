"""End-to-end training behaviour of every architecture family.

These tests train each miniature architecture on a tiny memorization problem
and check that loss decreases and the training data is (nearly) fit — the
classic "can it overfit a small batch" sanity check that exercises the full
forward/backward path of every layer type the architecture uses.
"""

import numpy as np
import pytest

from repro.nn.architectures import densenet_mini, lenet5, mlp, transfer_head, vgg_mini
from repro.nn.layers import BatchNorm, Dense, Dropout
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.optim.adam import Adam, AdamW
from repro.optim.sgd import SGD


def memorize(model, x, y, optimizer, steps=120):
    """Train on the full (tiny) batch repeatedly; return (first_loss, last_loss)."""
    loss = SoftmaxCrossEntropy()
    first = model.evaluate(x, y, loss)[0]
    for _ in range(steps):
        model.train_batch(x, y, loss)
        model.set_parameters(optimizer.step(model.get_parameters(), model.get_gradients()))
    last, accuracy = model.evaluate(x, y, loss)
    return first, last, accuracy


class TestMemorization:
    def test_mlp_memorizes_random_labels(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(24, 6))
        y = rng.integers(0, 3, size=24)
        model = mlp(6, 3, hidden_units=(32, 16), seed=0)
        first, last, accuracy = memorize(model, x, y, Adam(0.01), steps=300)
        assert last < first
        assert accuracy > 0.9

    def test_lenet_memorizes_small_batch(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(16, 14, 14, 1))
        y = rng.integers(0, 10, size=16)
        model = lenet5(seed=0)
        first, last, accuracy = memorize(model, x, y, Adam(0.002), steps=200)
        assert last < first * 0.5
        assert accuracy > 0.8

    def test_vgg_mini_memorizes_small_batch(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(12, 14, 14, 1))
        y = rng.integers(0, 10, size=12)
        model = vgg_mini(seed=0)
        first, last, accuracy = memorize(model, x, y, Adam(0.002), steps=200)
        assert last < first * 0.5
        assert accuracy > 0.8

    def test_densenet_mini_trains_with_sgd_nesterov(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(16, 10, 10, 3))
        y = rng.integers(0, 4, size=16)
        model = densenet_mini(input_shape=(10, 10, 3), num_classes=4, seed=0)
        optimizer = SGD(0.05, momentum=0.9, nesterov=True, weight_decay=1e-4)
        first, last, accuracy = memorize(model, x, y, optimizer, steps=150)
        assert last < first
        assert accuracy > 0.7

    def test_transfer_head_trains_with_adamw(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(32, 24))
        y = rng.integers(0, 5, size=32)
        model = transfer_head(feature_dim=24, num_classes=5, dropout_rate=0.0, seed=0)
        first, last, accuracy = memorize(model, x, y, AdamW(0.01, weight_decay=0.001), steps=300)
        assert last < first * 0.5
        assert accuracy > 0.85


class TestRegularizationBehaviour:
    def test_dropout_changes_training_but_not_inference(self):
        model = Sequential(
            [Dense(16, activation="relu"), Dropout(0.5, seed=1), Dense(3)]
        ).build((5,), seed=0)
        x = np.random.default_rng(0).normal(size=(8, 5))
        inference_a = model.forward(x, training=False)
        inference_b = model.forward(x, training=False)
        np.testing.assert_array_equal(inference_a, inference_b)
        training_a = model.forward(x, training=True)
        training_b = model.forward(x, training=True)
        assert not np.array_equal(training_a, training_b)

    def test_batchnorm_inference_consistent_after_training(self):
        model = Sequential(
            [Dense(8, activation="relu"), BatchNorm(momentum=0.5), Dense(2)]
        ).build((4,), seed=0)
        optimizer = Adam(0.01)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(64, 4))
        y = (x[:, 0] > 0).astype(int)
        for _ in range(30):
            model.train_batch(x, y)
            model.set_parameters(optimizer.step(model.get_parameters(), model.get_gradients()))
        # Two inference passes agree exactly (running statistics frozen).
        np.testing.assert_array_equal(
            model.forward(x, training=False), model.forward(x, training=False)
        )
        # And inference accuracy reflects the learned separation.
        _, accuracy = model.evaluate(x, y)
        assert accuracy > 0.9

    def test_weight_decay_reduces_parameter_norm(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(32, 6))
        y = rng.integers(0, 3, size=32)
        plain = mlp(6, 3, hidden_units=(16,), seed=0)
        decayed = mlp(6, 3, hidden_units=(16,), seed=0)
        memorize(plain, x, y, SGD(0.05), steps=150)
        memorize(decayed, x, y, SGD(0.05, weight_decay=0.05), steps=150)
        assert np.linalg.norm(decayed.get_parameters()) < np.linalg.norm(plain.get_parameters())


class TestDeterminism:
    def test_identical_training_runs_are_bitwise_identical(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(20, 6))
        y = rng.integers(0, 3, size=20)

        def train_once():
            model = mlp(6, 3, hidden_units=(8,), seed=3)
            optimizer = Adam(0.01)
            for _ in range(50):
                model.train_batch(x, y)
                model.set_parameters(
                    optimizer.step(model.get_parameters(), model.get_gradients())
                )
            return model.get_parameters()

        np.testing.assert_array_equal(train_once(), train_once())
