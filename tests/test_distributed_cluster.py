"""Tests for workers and the simulated cluster (collectives, sync, evaluation)."""

import numpy as np
import pytest

from repro.data.partition import partition_dataset
from repro.data.synthetic import gaussian_blobs
from repro.distributed.cluster import CATEGORY_MODEL, SimulatedCluster
from repro.distributed.comm import RING_COST_MODEL
from repro.distributed.worker import Worker
from repro.exceptions import CommunicationError, ConfigurationError
from repro.nn.architectures import mlp
from repro.optim.adam import Adam
from repro.optim.sgd import SGD


def make_cluster(num_workers=3, seed=0, cost_model=None):
    data = gaussian_blobs(240, feature_dim=8, num_classes=3, seed=seed)
    shards = partition_dataset(data, num_workers, "iid", seed=seed)
    workers = [
        Worker(
            worker_id=i,
            model=mlp(8, 3, hidden_units=(12,), seed=seed),
            dataset=shard,
            optimizer=Adam(0.01),
            batch_size=16,
            seed=seed + i,
        )
        for i, shard in enumerate(shards)
    ]
    return SimulatedCluster(workers, cost_model=cost_model)


class TestWorker:
    def test_local_step_advances_and_returns_loss(self):
        cluster = make_cluster(1)
        worker = cluster.workers[0]
        loss = worker.local_step()
        assert np.isfinite(loss)
        assert worker.steps_performed == 1

    def test_local_step_changes_parameters(self):
        worker = make_cluster(1).workers[0]
        before = worker.get_parameters()
        worker.local_step()
        assert not np.array_equal(before, worker.get_parameters())

    def test_local_epoch_runs_all_batches(self):
        worker = make_cluster(2).workers[0]
        worker.local_epoch()
        assert worker.steps_performed == worker.batches_per_epoch

    def test_drift_from_reference(self):
        worker = make_cluster(1).workers[0]
        reference = worker.get_parameters()
        worker.local_step()
        drift = worker.drift_from(reference)
        np.testing.assert_allclose(drift, worker.get_parameters() - reference)

    def test_invalid_configuration(self):
        data = gaussian_blobs(30, feature_dim=8, num_classes=3, seed=0)
        with pytest.raises(ConfigurationError):
            Worker(-1, mlp(8, 3, seed=0), data, SGD(0.1))
        with pytest.raises(ConfigurationError):
            Worker(0, mlp(8, 3, seed=0), data, SGD(0.1), batch_size=0)


class TestClusterBasics:
    def test_properties(self):
        cluster = make_cluster(3)
        assert cluster.num_workers == 3
        assert cluster.model_dimension == cluster.workers[0].num_parameters
        assert cluster.parallel_steps == 0

    def test_requires_workers(self):
        with pytest.raises(ConfigurationError):
            SimulatedCluster([])

    def test_requires_matching_dimensions(self):
        data = gaussian_blobs(60, feature_dim=8, num_classes=3, seed=0)
        workers = [
            Worker(0, mlp(8, 3, hidden_units=(4,), seed=0), data, Adam()),
            Worker(1, mlp(8, 3, hidden_units=(8,), seed=0), data, Adam()),
        ]
        with pytest.raises(CommunicationError):
            SimulatedCluster(workers)

    def test_step_all_advances_every_worker(self):
        cluster = make_cluster(3)
        cluster.step_all()
        assert all(worker.steps_performed == 1 for worker in cluster.workers)
        assert cluster.parallel_steps == 1


class TestCollectives:
    def test_allreduce_averages_and_charges(self):
        cluster = make_cluster(2)
        result = cluster.allreduce([np.ones(10), np.zeros(10)], "other")
        np.testing.assert_allclose(result, 0.5)
        assert cluster.tracker.bytes_for("other") == 10 * 8 * 2

    def test_allreduce_requires_one_vector_per_worker(self):
        cluster = make_cluster(3)
        with pytest.raises(CommunicationError):
            cluster.allreduce([np.ones(4)], "other")

    def test_allreduce_scalar(self):
        cluster = make_cluster(2)
        assert cluster.allreduce_scalar([1.0, 3.0]) == 2.0

    def test_broadcast_sets_all_parameters(self):
        cluster = make_cluster(3)
        flat = np.zeros(cluster.model_dimension)
        cluster.broadcast_parameters(flat)
        for worker in cluster.workers:
            np.testing.assert_array_equal(worker.get_parameters(), flat)

    def test_broadcast_free_by_default(self):
        cluster = make_cluster(3)
        cluster.broadcast_parameters(np.zeros(cluster.model_dimension))
        assert cluster.total_bytes == 0

    def test_ring_cost_model_changes_charges(self):
        naive = make_cluster(4)
        ring = make_cluster(4, cost_model=RING_COST_MODEL)
        naive.synchronize()
        ring.synchronize()
        # Same synchronization, different accounting scheme.
        assert ring.total_bytes != naive.total_bytes
        assert ring.tracker.cost_model.scheme == "ring"


class TestSynchronizeAndEvaluate:
    def test_synchronize_equalizes_parameters(self):
        cluster = make_cluster(3)
        for _ in range(3):
            cluster.step_all()
        assert cluster.model_variance() > 0
        average = cluster.synchronize()
        assert cluster.model_variance() == pytest.approx(0.0, abs=1e-18)
        for worker in cluster.workers:
            np.testing.assert_allclose(worker.get_parameters(), average)

    def test_synchronize_charges_model_category(self):
        cluster = make_cluster(3)
        cluster.synchronize()
        expected = cluster.model_dimension * 8 * 3
        assert cluster.tracker.bytes_for(CATEGORY_MODEL) == expected
        assert cluster.synchronization_count == 1

    def test_average_parameters_is_free(self):
        cluster = make_cluster(2)
        cluster.average_parameters()
        assert cluster.total_bytes == 0

    def test_evaluate_global_does_not_touch_workers(self):
        cluster = make_cluster(2)
        data = gaussian_blobs(60, feature_dim=8, num_classes=3, seed=1)
        before = [worker.get_parameters() for worker in cluster.workers]
        loss, accuracy = cluster.evaluate_global(data)
        assert 0.0 <= accuracy <= 1.0 and np.isfinite(loss)
        for worker, params in zip(cluster.workers, before):
            np.testing.assert_array_equal(worker.get_parameters(), params)

    def test_evaluate_worker_bounds(self):
        cluster = make_cluster(2)
        data = gaussian_blobs(30, feature_dim=8, num_classes=3, seed=1)
        with pytest.raises(CommunicationError):
            cluster.evaluate_worker(5, data)

    def test_model_variance_matches_definition(self):
        cluster = make_cluster(3)
        for _ in range(2):
            cluster.step_all()
        parameters = np.stack([w.get_parameters() for w in cluster.workers])
        mean = parameters.mean(axis=0)
        expected = float(np.mean(np.sum((parameters - mean) ** 2, axis=1)))
        assert cluster.model_variance() == pytest.approx(expected)
