"""Tests for the asynchronous FDA variant (Section 3.3 of the paper)."""

import numpy as np
import pytest

from repro.core.async_fda import AsynchronousFDATrainer, StragglerProfile
from repro.core.monitor import ExactMonitor, LinearMonitor
from repro.data.partition import partition_dataset
from repro.data.synthetic import gaussian_blobs
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.worker import Worker
from repro.exceptions import ConfigurationError
from repro.nn.architectures import mlp
from repro.optim.adam import Adam


def make_cluster(num_workers=4, seed=0):
    data = gaussian_blobs(320, feature_dim=8, num_classes=3, seed=seed)
    shards = partition_dataset(data, num_workers, "iid", seed=seed)
    workers = [
        Worker(
            worker_id=i,
            model=mlp(8, 3, hidden_units=(12,), seed=seed),
            dataset=shard,
            optimizer=Adam(0.02),
            batch_size=16,
            seed=seed + i,
        )
        for i, shard in enumerate(shards)
    ]
    return SimulatedCluster(workers)


def make_trainer(threshold=0.5, profile=None, num_workers=4, monitor=None):
    cluster = make_cluster(num_workers)
    return AsynchronousFDATrainer(
        cluster,
        monitor or ExactMonitor(),
        threshold,
        profile=profile,
        seed=0,
    )


class TestStragglerProfile:
    def test_uniform_profile(self):
        durations = StragglerProfile(base_step_seconds=2.0).step_durations(5, seed=0)
        np.testing.assert_allclose(durations, 2.0)

    def test_stragglers_are_slower(self):
        profile = StragglerProfile(straggler_fraction=0.5, straggler_factor=4.0)
        durations = profile.step_durations(6, seed=0)
        assert np.sum(durations == 4.0) == 3
        assert np.sum(durations == 1.0) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StragglerProfile(base_step_seconds=0)
        with pytest.raises(ConfigurationError):
            StragglerProfile(straggler_fraction=1.5)
        with pytest.raises(ConfigurationError):
            StragglerProfile(straggler_factor=0.5)
        with pytest.raises(ConfigurationError):
            StragglerProfile(jitter=-0.1)


class TestAsynchronousTrainer:
    def test_events_processed_in_time_order(self):
        trainer = make_trainer()
        events = trainer.run_events(20)
        times = [event.time for event in events]
        assert times == sorted(times)
        assert trainer.total_steps == 20

    def test_negative_threshold_rejected(self):
        cluster = make_cluster(2)
        with pytest.raises(ConfigurationError):
            AsynchronousFDATrainer(cluster, ExactMonitor(), -0.1)

    def test_state_traffic_charged_per_completion(self):
        trainer = make_trainer(threshold=1e9, monitor=LinearMonitor(dimension=147, seed=0))
        trainer.run_events(10)
        assert trainer.cluster.tracker.operations_for("fda-state") == 10

    def test_synchronization_triggered_by_low_threshold(self):
        trainer = make_trainer(threshold=0.0)
        trainer.run_events(12)
        assert trainer.synchronization_count > 0

    def test_high_threshold_avoids_synchronization(self):
        trainer = make_trainer(threshold=1e9)
        trainer.run_events(12)
        assert trainer.synchronization_count == 0

    def test_run_for_advances_virtual_clock(self):
        trainer = make_trainer(profile=StragglerProfile(base_step_seconds=1.0))
        events = trainer.run_for(5.0)
        assert trainer.virtual_time >= 5.0
        # 4 workers, 1 second per step, 5 seconds -> about 20 completions.
        assert 16 <= len(events) <= 24

    def test_run_for_validates_input(self):
        trainer = make_trainer()
        with pytest.raises(ConfigurationError):
            trainer.run_for(0.0)

    def test_run_events_validates_input(self):
        trainer = make_trainer()
        with pytest.raises(ConfigurationError):
            trainer.run_events(-1)


class TestStragglerBehaviour:
    def test_fast_workers_perform_more_steps(self):
        profile = StragglerProfile(straggler_fraction=0.25, straggler_factor=5.0)
        trainer = make_trainer(threshold=1e9, profile=profile)
        trainer.run_for(30.0)
        steps = np.asarray(trainer.steps_by_worker())
        assert steps.max() > 2 * steps.min()

    def test_synchronous_lockstep_recovered_without_stragglers(self):
        trainer = make_trainer(threshold=1e9, profile=StragglerProfile())
        trainer.run_for(10.0)
        steps = np.asarray(trainer.steps_by_worker())
        assert steps.max() - steps.min() <= 1

    def test_straggler_training_still_converges(self):
        profile = StragglerProfile(straggler_fraction=0.25, straggler_factor=3.0)
        trainer = make_trainer(threshold=0.3, profile=profile)
        # Same seed => same class structure as the training shards (held-out samples
        # of the identical generative task).
        test_data = gaussian_blobs(150, feature_dim=8, num_classes=3, seed=0)
        trainer.run_for(80.0)
        _, accuracy = trainer.cluster.evaluate_global(test_data)
        assert accuracy > 0.8

    def test_variance_stays_bounded_with_exact_monitor(self):
        theta = 0.3
        trainer = make_trainer(threshold=theta)
        for _ in range(40):
            event = trainer.process_next_completion()
            if event.synchronized:
                assert trainer.cluster.model_variance() == pytest.approx(0.0, abs=1e-18)
        # The asynchronous protocol checks the invariant only when every worker
        # has reported at least once, so allow slack of one step's drift.
        assert trainer.cluster.model_variance() < 10 * theta
