"""Tests for the Dataset container and train/test splitting."""

import numpy as np
import pytest

from repro.data.datasets import Dataset, train_test_split
from repro.exceptions import DataError


def make_dataset(n=20, classes=4):
    rng = np.random.default_rng(0)
    return Dataset(rng.normal(size=(n, 3)), rng.integers(0, classes, size=n), classes, name="t")


class TestDataset:
    def test_basic_properties(self):
        data = make_dataset(12, 4)
        assert len(data) == 12
        assert data.sample_shape == (3,)
        assert data.class_counts().sum() == 12

    def test_rejects_misaligned_arrays(self):
        with pytest.raises(DataError):
            Dataset(np.zeros((5, 2)), np.zeros(4, dtype=int), 2)

    def test_rejects_2d_labels(self):
        with pytest.raises(DataError):
            Dataset(np.zeros((5, 2)), np.zeros((5, 1), dtype=int), 2)

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(DataError):
            Dataset(np.zeros((3, 2)), np.array([0, 1, 5]), 3)

    def test_subset_copies(self):
        data = make_dataset()
        subset = data.subset([0, 1, 2])
        subset.x[...] = 0.0
        assert not np.all(data.x[:3] == 0.0)

    def test_subset_rejects_bad_indices(self):
        data = make_dataset(5)
        with pytest.raises(DataError):
            data.subset([0, 10])

    def test_shuffled_preserves_content(self):
        data = make_dataset(30)
        shuffled = data.shuffled(seed=1)
        assert sorted(shuffled.y.tolist()) == sorted(data.y.tolist())
        assert len(shuffled) == len(data)


class TestTrainTestSplit:
    def test_sizes(self):
        data = make_dataset(100)
        train, test = train_test_split(data, test_fraction=0.25, seed=0)
        assert len(train) == 75 and len(test) == 25

    def test_disjoint_and_complete(self):
        data = Dataset(np.arange(40).reshape(40, 1), np.zeros(40, dtype=int), 1)
        train, test = train_test_split(data, test_fraction=0.5, seed=3)
        combined = sorted(train.x[:, 0].tolist() + test.x[:, 0].tolist())
        assert combined == list(range(40))

    def test_reproducible(self):
        data = make_dataset(50)
        a_train, _ = train_test_split(data, 0.2, seed=7)
        b_train, _ = train_test_split(data, 0.2, seed=7)
        np.testing.assert_array_equal(a_train.x, b_train.x)

    def test_invalid_fraction(self):
        with pytest.raises(DataError):
            train_test_split(make_dataset(), 0.0)
        with pytest.raises(DataError):
            train_test_split(make_dataset(), 1.0)
