"""Property-based tests of whole-protocol invariants.

These use Hypothesis to drive short end-to-end FDA runs with randomized
thresholds, variants, and worker counts, and check accounting and monotonicity
invariants that must hold for *every* configuration:

* the communication total equals the sum of the per-category traffic;
* state traffic grows linearly with the number of steps;
* cumulative metrics recorded in a run history are non-decreasing;
* the model variance is never negative and is zero right after any sync.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.fda import FDATrainer
from repro.core.monitor import make_monitor
from repro.data.partition import partition_dataset
from repro.data.synthetic import gaussian_blobs
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.worker import Worker
from repro.experiments.run import TrainingRun
from repro.experiments.setup import build_cluster
from repro.nn.architectures import mlp
from repro.optim.sgd import SGD
from repro.strategies.fda_strategy import FDAStrategy


def build_small_cluster(num_workers: int, seed: int) -> SimulatedCluster:
    data = gaussian_blobs(40 * num_workers, feature_dim=6, num_classes=3, seed=seed)
    shards = partition_dataset(data, num_workers, "iid", seed=seed)
    workers = [
        Worker(
            worker_id=i,
            model=mlp(6, 3, hidden_units=(8,), seed=seed),
            dataset=shard,
            optimizer=SGD(0.05),
            batch_size=8,
            seed=seed + i,
        )
        for i, shard in enumerate(shards)
    ]
    return SimulatedCluster(workers)


SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestAccountingInvariants:
    @SETTINGS
    @given(
        theta=st.floats(min_value=0.0, max_value=5.0),
        variant=st.sampled_from(["linear", "sketch", "exact"]),
        num_workers=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_total_bytes_is_sum_of_categories(self, theta, variant, num_workers, seed):
        cluster = build_small_cluster(num_workers, seed)
        monitor = make_monitor(variant, cluster.model_dimension, sketch_depth=3, sketch_width=16)
        trainer = FDATrainer(cluster, monitor, theta)
        trainer.run_steps(6)
        tracker = cluster.tracker
        assert tracker.total_bytes == sum(tracker.bytes_by_category.values())
        assert tracker.bytes_for("fda-state") > 0
        assert tracker.bytes_for("model-sync") >= 0

    @SETTINGS
    @given(
        num_steps=st.integers(min_value=1, max_value=10),
        num_workers=st.integers(min_value=2, max_value=4),
    )
    def test_state_traffic_linear_in_steps(self, num_steps, num_workers):
        cluster = build_small_cluster(num_workers, seed=1)
        monitor = make_monitor("linear", cluster.model_dimension)
        trainer = FDATrainer(cluster, monitor, threshold=1e9)
        trainer.run_steps(num_steps)
        expected = num_steps * 2 * 8 * num_workers  # steps * elements * bytes * K
        assert cluster.tracker.bytes_for("fda-state") == expected

    @SETTINGS
    @given(
        theta=st.floats(min_value=0.0, max_value=3.0),
        seed=st.integers(min_value=0, max_value=30),
    )
    def test_variance_never_negative_and_zero_after_sync(self, theta, seed):
        cluster = build_small_cluster(3, seed)
        monitor = make_monitor("exact", cluster.model_dimension)
        trainer = FDATrainer(cluster, monitor, theta)
        for _ in range(8):
            result = trainer.step()
            variance = cluster.model_variance()
            assert variance >= 0.0
            if result.synchronized:
                assert variance == pytest.approx(0.0, abs=1e-15)


class TestRunHistoryInvariants:
    @SETTINGS
    @given(theta=st.floats(min_value=0.1, max_value=20.0))
    def test_cumulative_metrics_are_monotone(self, theta):
        from repro.experiments.setup import WorkloadConfig, make_optimizer

        data = gaussian_blobs(240, feature_dim=8, num_classes=3, seed=0)
        test_data = gaussian_blobs(80, feature_dim=8, num_classes=3, seed=0)
        workload = WorkloadConfig(
            name="props",
            model_factory=lambda: mlp(8, 3, hidden_units=(12,), seed=0),
            train_dataset=data,
            test_dataset=test_data,
            optimizer_factory=make_optimizer("adam", learning_rate=0.01),
            num_workers=3,
            batch_size=16,
            seed=0,
        )
        cluster, test_dataset = build_cluster(workload)
        run = TrainingRun(accuracy_target=0.95, max_steps=60, eval_every_steps=15)
        result = run.execute(FDAStrategy(threshold=theta), cluster, test_dataset)

        steps = result.history.series("steps")
        communication = result.history.series("communication_bytes")
        synchronizations = result.history.series("synchronizations")
        assert steps == sorted(steps)
        assert communication == sorted(communication)
        assert synchronizations == sorted(synchronizations)
        assert result.parallel_steps == steps[-1]
        assert result.communication_bytes == communication[-1]
        assert result.state_bytes + result.model_bytes == result.communication_bytes
