"""End-to-end integration tests reproducing the paper's headline claims in miniature.

These tests run full training loops (a few hundred milliseconds each) and
check the *shape* of the results reported in Section 4: FDA reaches the same
accuracy target as the baselines with far less communication, remains robust
under Non-IID partitioning, and obeys the Θ trade-off.
"""

import numpy as np
import pytest

from repro.experiments.run import TrainingRun
from repro.experiments.setup import build_cluster
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.fedopt import fedadam_strategy
from repro.strategies.local_sgd import LocalSGDStrategy
from repro.strategies.synchronous import SynchronousStrategy


RUN = TrainingRun(accuracy_target=0.9, max_steps=120, eval_every_steps=15)


def run_strategy(workload, strategy, run=RUN):
    cluster, test_dataset = build_cluster(workload)
    return run.execute(strategy, cluster, test_dataset, workload_name=workload.name)


class TestHeadlineClaim:
    def test_fda_matches_accuracy_with_far_less_communication(self, blobs_workload):
        """The paper's main result: equivalent accuracy, orders less communication."""
        sync = run_strategy(blobs_workload, SynchronousStrategy())
        linear = run_strategy(blobs_workload, FDAStrategy(threshold=2.0, variant="linear"))
        sketch = run_strategy(
            blobs_workload,
            FDAStrategy(threshold=2.0, variant="sketch", sketch_depth=3, sketch_width=16),
        )
        assert sync.reached_target and linear.reached_target and sketch.reached_target
        assert linear.communication_bytes < sync.communication_bytes / 10
        assert sketch.communication_bytes < sync.communication_bytes / 2
        # Computation stays in the same ballpark (the paper: comparable steps).
        assert linear.parallel_steps <= 3 * sync.parallel_steps

    def test_fda_beats_fedopt_in_communication(self, blobs_workload):
        fedadam = run_strategy(blobs_workload, fedadam_strategy(learning_rate=0.05))
        linear = run_strategy(blobs_workload, FDAStrategy(threshold=2.0, variant="linear"))
        assert linear.reached_target
        assert linear.communication_bytes < fedadam.communication_bytes

    def test_fda_beats_local_sgd_at_matched_accuracy(self, blobs_workload):
        local = run_strategy(blobs_workload, LocalSGDStrategy(tau=5))
        linear = run_strategy(blobs_workload, FDAStrategy(threshold=2.0, variant="linear"))
        assert linear.reached_target and local.reached_target
        assert linear.communication_bytes < local.communication_bytes


class TestHeterogeneityRobustness:
    @pytest.mark.parametrize(
        "scheme,kwargs",
        [
            ("noniid-fraction", {"fraction": 0.6}),
            ("noniid-label", {"label": 0, "num_holders": 1}),
            ("dirichlet", {"alpha": 0.5}),
        ],
    )
    def test_fda_still_converges_under_noniid(self, blobs_workload, scheme, kwargs):
        heterogeneous = blobs_workload.with_partition(scheme, **kwargs)
        result = run_strategy(
            heterogeneous,
            FDAStrategy(threshold=1.0, variant="linear"),
            TrainingRun(accuracy_target=0.85, max_steps=400, eval_every_steps=20),
        )
        assert result.reached_target

    def test_noniid_cost_comparable_to_iid(self, blobs_workload):
        iid = run_strategy(blobs_workload, FDAStrategy(threshold=2.0))
        noniid = run_strategy(
            blobs_workload.with_partition("noniid-fraction", fraction=0.6),
            FDAStrategy(threshold=2.0),
            TrainingRun(accuracy_target=0.9, max_steps=240, eval_every_steps=15),
        )
        assert noniid.reached_target
        # Within an order of magnitude of the IID cost (the paper: negligible gap).
        assert noniid.communication_bytes < 10 * max(iid.communication_bytes, 1)


class TestThetaTradeoff:
    def test_larger_theta_reduces_synchronizations(self, blobs_workload):
        tight = run_strategy(blobs_workload, FDAStrategy(threshold=0.2))
        loose = run_strategy(blobs_workload, FDAStrategy(threshold=20.0))
        assert tight.synchronizations >= loose.synchronizations

    def test_larger_theta_reduces_communication(self, blobs_workload):
        tight = run_strategy(blobs_workload, FDAStrategy(threshold=0.2))
        loose = run_strategy(blobs_workload, FDAStrategy(threshold=20.0))
        assert loose.communication_bytes <= tight.communication_bytes


class TestStateVsModelTraffic:
    def test_fda_traffic_is_dominated_by_states_not_syncs(self, blobs_workload):
        result = run_strategy(blobs_workload, FDAStrategy(threshold=50.0, variant="linear"))
        # With a large Theta almost no syncs happen, so state traffic dominates
        # and the absolute total stays tiny.
        assert result.state_bytes > 0
        assert result.model_bytes <= result.communication_bytes
        assert result.communication_bytes < 200_000

    def test_synchronous_traffic_is_all_model_traffic(self, blobs_workload):
        result = run_strategy(blobs_workload, SynchronousStrategy())
        assert result.state_bytes == 0
        assert result.model_bytes == result.communication_bytes


class TestReproducibility:
    def test_same_seed_gives_identical_run(self, blobs_workload):
        first = run_strategy(blobs_workload, FDAStrategy(threshold=2.0, seed=0))
        second = run_strategy(blobs_workload, FDAStrategy(threshold=2.0, seed=0))
        assert first.communication_bytes == second.communication_bytes
        assert first.parallel_steps == second.parallel_steps
        assert first.final_accuracy == pytest.approx(second.final_accuracy)
