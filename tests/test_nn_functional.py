"""Tests for the low-level tensor helpers (im2col/col2im, one-hot, pooling)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ShapeError
from repro.nn.functional import (
    col2im,
    conv_output_size,
    flatten_batch,
    global_average_pool,
    im2col,
    one_hot,
    pad_nhwc,
)


class TestOneHot:
    def test_basic_encoding(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(ShapeError):
            one_hot(np.array([0, 3]), 3)

    def test_rejects_2d_labels(self):
        with pytest.raises(ShapeError):
            one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_empty_labels(self):
        assert one_hot(np.array([], dtype=int), 4).shape == (0, 4)


class TestConvOutputSize:
    def test_typical_cases(self):
        assert conv_output_size(28, 3, 1, 1) == 28
        assert conv_output_size(28, 2, 2, 0) == 14
        assert conv_output_size(10, 3, 1, 0) == 8

    def test_invalid_geometry_raises(self):
        with pytest.raises(ShapeError):
            conv_output_size(2, 5, 1, 0)


class TestIm2Col:
    def test_identity_kernel_recovers_input(self):
        x = np.arange(2 * 3 * 3 * 2, dtype=np.float64).reshape(2, 3, 3, 2)
        columns, (out_h, out_w) = im2col(x, 1, 1, 1, 0)
        assert (out_h, out_w) == (3, 3)
        np.testing.assert_array_equal(columns.reshape(2, 3, 3, 2), x)

    def test_known_patch_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4, 1)
        columns, (out_h, out_w) = im2col(x, 2, 2, 2, 0)
        assert (out_h, out_w) == (2, 2)
        np.testing.assert_array_equal(columns[0], [0, 1, 4, 5])
        np.testing.assert_array_equal(columns[3], [10, 11, 14, 15])

    def test_padding_adds_zeros(self):
        x = np.ones((1, 2, 2, 1))
        columns, (out_h, out_w) = im2col(x, 3, 3, 1, 1)
        assert (out_h, out_w) == (2, 2)
        # Corner patch includes 5 zero-padded positions.
        assert columns[0].sum() == 4.0

    def test_rejects_non_4d(self):
        with pytest.raises(ShapeError):
            im2col(np.zeros((3, 3)), 2, 2, 1, 0)

    def test_col2im_is_adjoint_of_im2col(self):
        # <im2col(x), y> == <x, col2im(y)> for the linear operator pair.
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 5, 5, 3))
        columns, _ = im2col(x, 3, 3, 1, 1)
        y = rng.normal(size=columns.shape)
        lhs = float(np.sum(columns * y))
        rhs = float(np.sum(x * col2im(y, x.shape, 3, 3, 1, 1)))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_col2im_shape_validation(self):
        with pytest.raises(ShapeError):
            col2im(np.zeros((3, 4)), (1, 4, 4, 1), 2, 2, 2, 0)

    @settings(max_examples=20, deadline=None)
    @given(
        kernel=st.integers(min_value=1, max_value=3),
        stride=st.integers(min_value=1, max_value=2),
        size=st.integers(min_value=4, max_value=7),
    )
    def test_adjoint_property_randomized(self, kernel, stride, size):
        rng = np.random.default_rng(size * 10 + kernel)
        x = rng.normal(size=(1, size, size, 2))
        columns, _ = im2col(x, kernel, kernel, stride, 0)
        y = rng.normal(size=columns.shape)
        lhs = float(np.sum(columns * y))
        rhs = float(np.sum(x * col2im(y, x.shape, kernel, kernel, stride, 0)))
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


class TestPaddingAndPooling:
    def test_pad_nhwc_zero_is_noop(self):
        x = np.ones((1, 2, 2, 1))
        assert pad_nhwc(x, 0) is x

    def test_pad_nhwc_shape(self):
        assert pad_nhwc(np.ones((2, 3, 3, 4)), 2).shape == (2, 7, 7, 4)

    def test_flatten_batch(self):
        assert flatten_batch(np.zeros((5, 2, 3, 4))).shape == (5, 24)

    def test_global_average_pool(self):
        x = np.arange(8, dtype=np.float64).reshape(1, 2, 2, 2)
        pooled = global_average_pool(x)
        np.testing.assert_allclose(pooled, [[3.0, 4.0]])

    def test_global_average_pool_rejects_non_4d(self):
        with pytest.raises(ShapeError):
            global_average_pool(np.zeros((2, 3)))
