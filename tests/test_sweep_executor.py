"""Tests for the streaming sweep executor and its content-addressed cache.

Covers the four tentpole guarantees: content-addressed keys are stable under
reconstruction and sensitive to every configuration field; a killed sweep
resumes from its durable records without re-executing completed cells; the
shared-setup memoization is bit-identical to eager per-cell builds (including
models with Dropout RNG streams); and process-parallel execution is
bit-identical to serial.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.data.synthetic import gaussian_blobs
from repro.exceptions import ExperimentError
from repro.experiments.cache import CODE_VERSION, RunStore
from repro.experiments.executor import (
    SweepCell,
    SweepExecutor,
    fork_parallelism_available,
)
from repro.experiments.run import TrainingRun
from repro.experiments.setup import SetupCache, WorkloadConfig, make_optimizer
from repro.experiments.sweep import _run_one, sweep_theta
from repro.nn.architectures import mlp, transfer_head
from repro.strategies.fda_strategy import FDAStrategy

BLOBS_FEATURES = 8
BLOBS_CLASSES = 3

RUN = TrainingRun(accuracy_target=0.95, max_steps=8, eval_every_steps=4)
THETAS = (0.5, 2.0, 8.0)


def small_model_factory(seed: int = 0):
    """A factory for the small MLP used as the worker model."""
    return lambda: mlp(
        BLOBS_FEATURES, BLOBS_CLASSES, hidden_units=(16,), seed=seed, name="test-mlp"
    )


def build_workload(seed: int = 0, **overrides) -> WorkloadConfig:
    """A fresh blobs workload; repeated calls share no objects, only content."""
    config = dict(
        name="blobs",
        model_factory=small_model_factory(),
        train_dataset=gaussian_blobs(
            360, feature_dim=BLOBS_FEATURES, num_classes=BLOBS_CLASSES, seed=0
        ),
        test_dataset=gaussian_blobs(
            150, feature_dim=BLOBS_FEATURES, num_classes=BLOBS_CLASSES, seed=0
        ),
        optimizer_factory=make_optimizer("adam", learning_rate=0.01),
        num_workers=4,
        batch_size=16,
        seed=seed,
    )
    config.update(overrides)
    return WorkloadConfig(**config)


def make_cell(workload, theta: float = 2.0, run: TrainingRun = RUN) -> SweepCell:
    return SweepCell(
        workload=workload,
        strategy_factory=lambda: FDAStrategy(threshold=theta, variant="linear", seed=0),
        run=run,
    )


def assert_results_identical(left, right):
    """Bit-level equality of two run results: ledgers, histories, accuracies."""
    assert left.communication_bytes == right.communication_bytes
    assert left.state_bytes == right.state_bytes
    assert left.model_bytes == right.model_bytes
    assert left.parallel_steps == right.parallel_steps
    assert left.synchronizations == right.synchronizations
    assert left.final_accuracy == right.final_accuracy
    assert left.best_accuracy == right.best_accuracy
    assert left.history.entries == right.history.entries


class TestRunKeys:
    def test_reconstructed_workload_same_key(self):
        # Two separately constructed workloads: distinct dataset objects,
        # distinct factory lambdas — identical content, therefore one key.
        executor = SweepExecutor()
        key_a = executor.run_key(make_cell(build_workload()))
        key_b = executor.run_key(make_cell(build_workload()))
        assert key_a == key_b

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda w: w.with_seed(1),
            lambda w: w.with_workers(5),
            lambda w: replace(w, batch_size=8),
            lambda w: replace(w, name="other"),
            lambda w: w.with_dtype("float32"),
            lambda w: w.with_execution("batched"),
            lambda w: w.with_fabric(topology="ring"),
            lambda w: w.with_fabric(network="fl"),
            lambda w: w.with_compression("topk"),
            lambda w: w.with_partition("dirichlet", alpha=0.3),
            lambda w: w.with_timeline(dropout_rate=0.2),
            lambda w: replace(
                w,
                train_dataset=gaussian_blobs(
                    360, feature_dim=BLOBS_FEATURES, num_classes=BLOBS_CLASSES, seed=7
                ),
            ),
            lambda w: replace(w, model_factory=small_model_factory(seed=3)),
            lambda w: replace(
                w, optimizer_factory=make_optimizer("adam", learning_rate=0.02)
            ),
        ],
    )
    def test_any_workload_field_change_changes_key(self, mutate):
        executor = SweepExecutor()
        base = executor.run_key(make_cell(build_workload()))
        changed = executor.run_key(make_cell(mutate(build_workload())))
        assert changed != base

    def test_strategy_and_run_changes_change_key(self):
        executor = SweepExecutor()
        workload = build_workload()
        base = executor.run_key(make_cell(workload, theta=2.0))
        assert executor.run_key(make_cell(workload, theta=4.0)) != base
        longer = TrainingRun(accuracy_target=0.95, max_steps=16, eval_every_steps=4)
        assert executor.run_key(make_cell(workload, run=longer)) != base

    def test_key_salted_with_code_version(self):
        executor = SweepExecutor()
        key = executor.run_key(make_cell(build_workload()))
        assert CODE_VERSION  # the salt exists...
        # ...and participates: recomputing under a patched salt must differ.
        import repro.experiments.executor as executor_module

        original = executor_module.CODE_VERSION
        executor_module.CODE_VERSION = original + "-next"
        try:
            assert executor.run_key(make_cell(build_workload())) != key
        finally:
            executor_module.CODE_VERSION = original


class TestMemoizedSetup:
    def test_memoized_results_match_eager(self):
        eager = [
            _run_one(
                build_workload(),
                FDAStrategy(threshold=theta, variant="linear", seed=0),
                RUN,
            )
            for theta in THETAS
        ]
        executor = SweepExecutor()
        points = sweep_theta(build_workload(), THETAS, RUN, executor=executor)
        # Partitions and the model pool were each built exactly once for the
        # whole grid (pool lookups also serve key fingerprinting, so hit
        # counts exceed cell counts — misses are the build-cost metric).
        assert executor.setup.partition_misses == 1
        assert executor.setup.model_misses == 1
        assert executor.setup.partition_hits == len(THETAS) - 1
        for point, reference in zip(points, eager):
            assert_results_identical(point.result, reference)

    def test_memoized_dropout_model_matches_eager(self):
        # Dropout layers consume a private RNG stream during training; the
        # model pool must rewind it on every bind for mask sequences to
        # replay exactly.
        workload = build_workload(
            model_factory=lambda: transfer_head(
                BLOBS_FEATURES,
                num_classes=BLOBS_CLASSES,
                hidden_units=(12,),
                dropout_rate=0.3,
                seed=0,
            ),
        )
        eager = [
            _run_one(
                workload, FDAStrategy(threshold=theta, variant="linear", seed=0), RUN
            )
            for theta in THETAS
        ]
        points = sweep_theta(workload, THETAS, RUN, executor=SweepExecutor())
        for point, reference in zip(points, eager):
            assert_results_identical(point.result, reference)

    def test_pool_survives_dtype_change(self):
        # A float32 cell converts the pooled skeletons in place; the next
        # float64 cell must get pristine float64 initials back.
        executor = SweepExecutor()
        reference = _run_one(
            build_workload(), FDAStrategy(threshold=2.0, variant="linear", seed=0), RUN
        )
        sweep_theta(build_workload(dtype="float32"), (2.0,), RUN, executor=executor)
        points = sweep_theta(build_workload(), (2.0,), RUN, executor=executor)
        assert_results_identical(points[0].result, reference)


class TestCrashResume:
    def test_interrupted_sweep_resumes_without_reexecution(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "cache"
        uninterrupted = sweep_theta(
            build_workload(), THETAS, RUN, executor=SweepExecutor()
        )

        # Kill the sweep after two completed cells (the third raises).
        real_execute = TrainingRun.execute
        calls = {"count": 0}

        def dying_execute(self, *args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 3:
                raise RuntimeError("simulated crash")
            return real_execute(self, *args, **kwargs)

        monkeypatch.setattr(TrainingRun, "execute", dying_execute)
        with pytest.raises(RuntimeError, match="simulated crash"):
            sweep_theta(
                build_workload(), THETAS, RUN, executor=SweepExecutor(cache_dir=cache_dir)
            )
        monkeypatch.setattr(TrainingRun, "execute", real_execute)
        assert len(RunStore(cache_dir)) == 2  # both completed cells are durable

        # Re-invoke: only the lost cell may execute.
        counting = {"count": 0}

        def counting_execute(self, *args, **kwargs):
            counting["count"] += 1
            return real_execute(self, *args, **kwargs)

        monkeypatch.setattr(TrainingRun, "execute", counting_execute)
        executor = SweepExecutor(cache_dir=cache_dir)
        points = sweep_theta(build_workload(), THETAS, RUN, executor=executor)
        assert counting["count"] == 1
        assert executor.stats.cache_hits == 2 and executor.stats.executed == 1
        for point, reference in zip(points, uninterrupted):
            assert_results_identical(point.result, reference.result)

    def test_force_reexecutes_and_shadows(self, tmp_path):
        cache_dir = tmp_path / "cache"
        sweep_theta(build_workload(), THETAS, RUN, executor=SweepExecutor(cache_dir=cache_dir))
        forced = SweepExecutor(cache_dir=cache_dir, force=True)
        sweep_theta(build_workload(), THETAS, RUN, executor=forced)
        assert forced.stats.cache_hits == 0 and forced.stats.executed == len(THETAS)
        # Shadowing appends: 6 lines on disk, 3 resolvable records.
        store = RunStore(cache_dir)
        assert len(store.runs_path.read_text().splitlines()) == 2 * len(THETAS)
        assert len(store) == len(THETAS)

    def test_no_resume_executes_but_still_records(self, tmp_path):
        cache_dir = tmp_path / "cache"
        sweep_theta(build_workload(), THETAS, RUN, executor=SweepExecutor(cache_dir=cache_dir))
        blind = SweepExecutor(cache_dir=cache_dir, resume=False)
        sweep_theta(build_workload(), THETAS, RUN, executor=blind)
        assert blind.stats.cache_hits == 0 and blind.stats.executed == len(THETAS)
        replaying = SweepExecutor(cache_dir=cache_dir)
        sweep_theta(build_workload(), THETAS, RUN, executor=replaying)
        assert replaying.stats.cache_hits == len(THETAS)


class TestRunStore:
    def test_truncated_tail_line_is_tolerated(self, tmp_path):
        store = RunStore(tmp_path / "cache")
        store.append("key-1", {"value": 1}, label="a")
        store.append("key-2", {"value": 2}, label="b")
        with store.runs_path.open("a", encoding="utf-8") as handle:
            handle.write('{"format": "repro.run-record", "key": "key-3", "resu')
        index = store.load_index()
        assert sorted(index) == ["key-1", "key-2"]

    def test_last_record_wins(self, tmp_path):
        store = RunStore(tmp_path / "cache")
        store.append("key-1", {"value": "old"})
        store.append("key-1", {"value": "new"})
        assert store.load_index()["key-1"]["result"] == {"value": "new"}
        assert len(store) == 1

    def test_refuses_foreign_manifest(self, tmp_path):
        foreign = tmp_path / "other"
        foreign.mkdir()
        (foreign / "manifest.json").write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ExperimentError, match="manifest"):
            RunStore(foreign)

    def test_manifest_is_well_formed(self, tmp_path):
        store = RunStore(tmp_path / "cache")
        manifest = store.manifest()
        assert manifest["format"] == "repro.sweep-cache"
        assert manifest["code_version"] == CODE_VERSION
        assert manifest["runs_file"] == "runs.jsonl"


@pytest.mark.skipif(not fork_parallelism_available(), reason="fork start method unavailable")
class TestParallelExecution:
    def test_parallel_results_bit_identical_to_serial(self, tmp_path):
        serial = sweep_theta(build_workload(), THETAS, RUN, executor=SweepExecutor())
        parallel_executor = SweepExecutor(cache_dir=tmp_path / "cache", jobs=2)
        parallel = sweep_theta(build_workload(), THETAS, RUN, executor=parallel_executor)
        assert parallel_executor.stats.parallel_cells == len(THETAS)
        for left, right in zip(serial, parallel):
            assert_results_identical(left.result, right.result)

    def test_parallel_completions_are_durable(self, tmp_path):
        cache_dir = tmp_path / "cache"
        sweep_theta(
            build_workload(), THETAS, RUN, executor=SweepExecutor(cache_dir=cache_dir, jobs=2)
        )
        replaying = SweepExecutor(cache_dir=cache_dir)
        sweep_theta(build_workload(), THETAS, RUN, executor=replaying)
        assert replaying.stats.cache_hits == len(THETAS)


class TestCellValidation:
    def test_rejects_non_cells(self):
        with pytest.raises(ExperimentError, match="SweepCell"):
            SweepExecutor().execute(["not-a-cell"])

    def test_rejects_non_positive_jobs(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="jobs"):
            SweepExecutor(jobs=0)
