"""Tests for the FedOpt server optimizers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.optim.server import FedAdagrad, FedAdam, FedAvg, FedAvgM, FedYogi


GLOBAL = np.array([1.0, 2.0, 3.0])
CLIENTS = [np.array([1.5, 2.5, 3.5]), np.array([1.0, 1.5, 2.5])]


class TestFedAvg:
    def test_aggregate_is_client_mean(self):
        new_global = FedAvg().aggregate(GLOBAL, CLIENTS)
        np.testing.assert_allclose(new_global, np.mean(CLIENTS, axis=0))

    def test_single_client_returns_that_client(self):
        new_global = FedAvg().aggregate(GLOBAL, [CLIENTS[0]])
        np.testing.assert_allclose(new_global, CLIENTS[0])

    def test_rejects_empty_clients(self):
        with pytest.raises(ShapeError):
            FedAvg().aggregate(GLOBAL, [])

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ShapeError):
            FedAvg().aggregate(GLOBAL, [np.zeros(2)])


class TestFedAvgM:
    def test_first_round_moves_toward_clients(self):
        server = FedAvgM(learning_rate=1.0, momentum=0.9)
        new_global = server.aggregate(GLOBAL, CLIENTS)
        np.testing.assert_allclose(new_global, np.mean(CLIENTS, axis=0))

    def test_momentum_accumulates_across_rounds(self):
        server = FedAvgM(learning_rate=1.0, momentum=0.9)
        first = server.aggregate(GLOBAL, CLIENTS)
        # Same pseudo-gradient again: momentum should push further than a plain step.
        second = server.aggregate(first, [first + 1.0, first - 0.0])
        plain = FedAvg().aggregate(first, [first + 1.0, first - 0.0])
        assert np.linalg.norm(second - first) > np.linalg.norm(plain - first) * 0.9

    def test_reset_clears_velocity(self):
        server = FedAvgM()
        server.aggregate(GLOBAL, CLIENTS)
        server.reset()
        assert server._velocity is None and server.round_count == 0

    def test_invalid_momentum(self):
        with pytest.raises(ConfigurationError):
            FedAvgM(momentum=1.5)


class TestAdaptiveServers:
    @pytest.mark.parametrize("factory", [FedAdam, FedAdagrad, FedYogi])
    def test_moves_toward_client_average(self, factory):
        server = factory(learning_rate=0.5)
        new_global = server.aggregate(GLOBAL, CLIENTS)
        direction = np.mean(CLIENTS, axis=0) - GLOBAL
        movement = new_global - GLOBAL
        assert np.dot(direction, movement) > 0  # moves in the right direction

    @pytest.mark.parametrize("factory", [FedAdam, FedAdagrad, FedYogi])
    def test_converges_on_fixed_target(self, factory):
        server = factory(learning_rate=0.3)
        target = np.array([5.0, -2.0])
        global_params = np.zeros(2)
        for _ in range(300):
            global_params = server.aggregate(global_params, [target, target])
        np.testing.assert_allclose(global_params, target, atol=0.2)

    def test_fedadam_rounds_counted(self):
        server = FedAdam()
        server.aggregate(GLOBAL, CLIENTS)
        server.aggregate(GLOBAL, CLIENTS)
        assert server.round_count == 2

    def test_invalid_learning_rate(self):
        with pytest.raises(ConfigurationError):
            FedAdam(learning_rate=0.0)

    def test_invalid_tau(self):
        with pytest.raises(ConfigurationError):
            FedAdam(tau=0.0)

    def test_fedyogi_second_moment_bounded_by_updates(self):
        server = FedYogi(learning_rate=0.1)
        for _ in range(5):
            server.aggregate(GLOBAL, CLIENTS)
        assert np.all(np.isfinite(server._v))
