"""Shared fixtures for the test-suite.

Everything here is intentionally tiny (a few hundred samples, models with a
few hundred parameters) so the whole suite runs in well under a minute while
still exercising every code path of the library.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import gaussian_blobs
from repro.experiments.setup import WorkloadConfig, make_optimizer
from repro.nn.architectures import mlp


BLOBS_FEATURES = 8
BLOBS_CLASSES = 3


@pytest.fixture()
def rng():
    """A deterministic NumPy generator for ad-hoc randomness in tests."""
    return np.random.default_rng(1234)


@pytest.fixture()
def blobs_train():
    """A small, easily separable training dataset."""
    return gaussian_blobs(360, feature_dim=BLOBS_FEATURES, num_classes=BLOBS_CLASSES, seed=0)


@pytest.fixture()
def blobs_test():
    """Held-out samples from the same class structure as ``blobs_train``."""
    return gaussian_blobs(150, feature_dim=BLOBS_FEATURES, num_classes=BLOBS_CLASSES, seed=0)


def small_model_factory(seed: int = 0):
    """A factory for a small MLP used as the worker model in cluster tests."""
    return lambda: mlp(
        BLOBS_FEATURES, BLOBS_CLASSES, hidden_units=(16,), seed=seed, name="test-mlp"
    )


@pytest.fixture()
def blobs_workload(blobs_train, blobs_test):
    """A ready-to-build workload over the blobs data with a small MLP."""
    return WorkloadConfig(
        name="blobs",
        model_factory=small_model_factory(),
        train_dataset=blobs_train,
        test_dataset=blobs_test,
        optimizer_factory=make_optimizer("adam", learning_rate=0.01),
        num_workers=4,
        batch_size=16,
        seed=0,
    )


def numerical_gradient(function, x, epsilon: float = 1e-6):
    """Central-difference numerical gradient of a scalar function of an array."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = function(x)
        flat[index] = original - epsilon
        minus = function(x)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2.0 * epsilon)
    return grad
