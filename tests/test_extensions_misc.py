"""Tests for the smaller extensions: compressed FDA synchronization, τ schedules,
and result persistence."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ExperimentError
from repro.experiments.persistence import (
    load_results,
    load_sweep,
    result_from_dict,
    result_to_dict,
    save_results,
    save_sweep,
)
from repro.experiments.results import compare_strategies
from repro.experiments.run import TrainingRun
from repro.experiments.setup import build_cluster
from repro.experiments.sweep import (
    CompressionSweepPoint,
    FabricSweepPoint,
    SweepPoint,
    sweep_theta,
)
from repro.strategies.compression import QuantizationCompressor, TopKCompressor
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.local_sgd import (
    LocalSGDStrategy,
    decreasing_tau,
    fixed_tau,
    increasing_tau,
    post_local_sgd_tau,
)


RUN = TrainingRun(accuracy_target=0.88, max_steps=120, eval_every_steps=20)


def run_on(workload, strategy, run=RUN):
    cluster, test_dataset = build_cluster(workload)
    return run.execute(strategy, cluster, test_dataset, workload_name=workload.name)


class TestCompressedFda:
    def test_name_includes_compressor(self):
        strategy = FDAStrategy(threshold=1.0, compressor=QuantizationCompressor(8))
        assert strategy.name == "LinearFDA+quantization"

    def test_compressed_sync_reduces_model_traffic(self, blobs_workload):
        plain = run_on(blobs_workload, FDAStrategy(threshold=0.1, variant="linear"))
        compressed = run_on(
            blobs_workload,
            FDAStrategy(threshold=0.1, variant="linear", compressor=QuantizationCompressor(8)),
        )
        assert plain.synchronizations > 0
        assert compressed.reached_target
        plain_per_sync = plain.model_bytes / max(plain.synchronizations, 1)
        compressed_per_sync = compressed.model_bytes / max(compressed.synchronizations, 1)
        assert compressed_per_sync < plain_per_sync

    def test_topk_compressed_fda_still_converges(self, blobs_workload):
        result = run_on(
            blobs_workload,
            FDAStrategy(threshold=0.5, variant="linear", compressor=TopKCompressor(0.25)),
            TrainingRun(accuracy_target=0.85, max_steps=200, eval_every_steps=20),
        )
        assert result.reached_target

    def test_workers_agree_after_compressed_sync(self, blobs_workload):
        cluster, _ = build_cluster(blobs_workload)
        strategy = FDAStrategy(
            threshold=0.0, variant="exact", compressor=QuantizationCompressor(8)
        ).attach(cluster)
        for _ in range(3):
            strategy.run_round()
        assert cluster.model_variance() == pytest.approx(0.0, abs=1e-18)


class TestTauSchedules:
    def test_fixed(self):
        schedule = fixed_tau(7)
        assert [schedule(r) for r in range(3)] == [7, 7, 7]
        with pytest.raises(ConfigurationError):
            fixed_tau(0)

    def test_increasing(self):
        schedule = increasing_tau(initial=2, growth=2.0, maximum=10)
        values = [schedule(r) for r in range(5)]
        assert values == sorted(values)
        assert values[0] == 2 and values[-1] == 10
        with pytest.raises(ConfigurationError):
            increasing_tau(growth=0.5)

    def test_decreasing(self):
        schedule = decreasing_tau(initial=16, decay=0.5, minimum=2)
        values = [schedule(r) for r in range(6)]
        assert values == sorted(values, reverse=True)
        assert values[-1] == 2
        with pytest.raises(ConfigurationError):
            decreasing_tau(decay=0.0)

    def test_post_local_sgd(self):
        schedule = post_local_sgd_tau(switch_round=3, tau_after=8)
        assert [schedule(r) for r in range(5)] == [1, 1, 1, 8, 8]
        with pytest.raises(ConfigurationError):
            post_local_sgd_tau(-1)

    def test_schedules_drive_local_sgd_strategy(self, blobs_workload):
        cluster, _ = build_cluster(blobs_workload)
        strategy = LocalSGDStrategy(tau=increasing_tau(initial=1, growth=2.0, maximum=8))
        strategy.attach(cluster)
        advanced = [strategy.run_round().steps_advanced for _ in range(4)]
        assert advanced == [1, 2, 4, 8]


class TestPersistence:
    def test_result_round_trip(self, blobs_workload, tmp_path):
        result = run_on(blobs_workload, FDAStrategy(threshold=2.0))
        payload = result_to_dict(result)
        restored = result_from_dict(payload)
        assert restored.strategy == result.strategy
        assert restored.communication_bytes == result.communication_bytes
        assert restored.history.entries == result.history.entries

    def test_save_and_load_results(self, blobs_workload, tmp_path):
        results = [
            run_on(blobs_workload, FDAStrategy(threshold=2.0)),
            run_on(blobs_workload, FDAStrategy(threshold=20.0)),
        ]
        path = save_results(results, tmp_path / "results.json")
        restored = load_results(path)
        assert len(restored) == 2
        assert {r.strategy for r in restored} == {"LinearFDA"}
        # Aggregation works identically on reloaded results.
        ratios = compare_strategies(restored + results, "LinearFDA", "LinearFDA")
        assert ratios["communication_ratio"] == pytest.approx(1.0)

    def test_save_and_load_sweep(self, blobs_workload, tmp_path):
        points = sweep_theta(blobs_workload, [0.5, 5.0], RUN)
        path = save_sweep(points, tmp_path / "sweep.json")
        restored = load_sweep(path)
        assert [p.value for p in restored] == [0.5, 5.0]
        assert all(isinstance(p, SweepPoint) for p in restored)
        assert restored[0].result.parallel_steps == points[0].result.parallel_steps

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_results(tmp_path / "nope.json")
        with pytest.raises(ExperimentError):
            load_sweep(tmp_path / "nope.json")

    def test_load_wrong_format_raises(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ExperimentError):
            load_results(path)

    def test_from_dict_validates_fields(self):
        with pytest.raises(ExperimentError):
            result_from_dict({"strategy": "A"})

    def test_malformed_history_entry_names_index(self, blobs_workload):
        payload = result_to_dict(run_on(blobs_workload, FDAStrategy(threshold=2.0)))
        payload["history"] = list(payload["history"]) + ["not-a-dict"]
        with pytest.raises(ExperimentError, match=f"entry {len(payload['history']) - 1}"):
            result_from_dict(payload)

    def test_history_entry_bad_metric_names_raise(self, blobs_workload):
        payload = result_to_dict(run_on(blobs_workload, FDAStrategy(threshold=2.0)))
        payload["history"] = [{1: 0.5}]
        with pytest.raises(ExperimentError, match="entry 0"):
            result_from_dict(payload)

    def test_typed_sweep_points_round_trip(self, blobs_workload, tmp_path):
        result = run_on(blobs_workload, FDAStrategy(threshold=2.0))
        points = [
            SweepPoint(parameter="theta", value=2.0, result=result),
            FabricSweepPoint(topology="ring", network="fl", result=result),
            CompressionSweepPoint(compression="topk(ratio=0.1)", result=result),
        ]
        path = save_sweep(points, tmp_path / "mixed.json")
        restored = load_sweep(path)
        assert [type(p) for p in restored] == [type(p) for p in points]
        assert restored[1].topology == "ring" and restored[1].network == "fl"
        assert restored[2].compression == "topk(ratio=0.1)"
        for original, loaded in zip(points, restored):
            assert loaded.result.history.entries == original.result.history.entries

    def test_version1_sweep_file_loads_as_sweep_points(self, blobs_workload, tmp_path):
        import json

        points = sweep_theta(blobs_workload, [0.5], RUN)
        path = save_sweep(points, tmp_path / "v2.json")
        document = json.loads(path.read_text())
        # Rewrite as a pre-typed version-1 file: no point_type discriminator.
        document["version"] = 1
        for record in document["points"]:
            record.pop("point_type")
        legacy = tmp_path / "v1.json"
        legacy.write_text(json.dumps(document))
        restored = load_sweep(legacy)
        assert [type(p) for p in restored] == [SweepPoint]
        assert restored[0].value == 0.5

    def test_unknown_point_type_raises(self, blobs_workload, tmp_path):
        import json

        points = sweep_theta(blobs_workload, [0.5], RUN)
        path = save_sweep(points, tmp_path / "sweep.json")
        document = json.loads(path.read_text())
        document["points"][0]["point_type"] = "mystery"
        path.write_text(json.dumps(document))
        with pytest.raises(ExperimentError, match="mystery"):
            load_sweep(path)
