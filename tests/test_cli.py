"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure3" in output and "table2" in output

    def test_table2_command(self, capsys):
        assert main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "LeNet-5 (mini)" in output
        assert "ConvNeXt head (transfer)" in output

    def test_compare_command_runs_quickly(self, capsys):
        exit_code = main(
            [
                "compare",
                "--workload", "lenet",
                "--theta", "8",
                "--workers", "3",
                "--target", "0.85",
                "--max-steps", "120",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "LinearFDA" in output and "Synchronous" in output
        assert "less communication" in output

    def test_compare_with_compression_flags(self, capsys):
        exit_code = main(
            [
                "compare",
                "--workload", "lenet",
                "--workers", "3",
                "--max-steps", "40",
                "--compressor", "topk",
                "--compression-ratio", "0.1",
                "--error-feedback",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "compression=topk(ratio=0.1)+ef" in output

    def test_compare_rejects_out_of_range_compression_ratio(self, capsys):
        exit_code = main(
            [
                "compare",
                "--workload", "lenet",
                "--compressor", "topk",
                "--compression-ratio", "1.5",
            ]
        )
        assert exit_code == 2
        assert "ratio" in capsys.readouterr().out

    def test_compression_command_registered(self, capsys):
        with pytest.raises(SystemExit):
            main(["compression", "--help"])
        output = capsys.readouterr().out
        assert "--full" in output

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_figure_commands_registered(self, capsys):
        # Only check that the parser accepts the figure names; running a full
        # figure is covered by the benchmark suite.
        with pytest.raises(SystemExit):
            main(["figure3", "--help"])
        output = capsys.readouterr().out
        assert "--full" in output
