"""Tests for the variance monitors (Theorems 3.1 and 3.2).

The central property: for any set of worker drifts, the monitor's estimate
H(average state) must be an *over-estimate* of the true model variance
(deterministically for LinearFDA and the exact monitor, with high probability
for SketchFDA).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.monitor import ExactMonitor, LinearMonitor, SketchMonitor, make_monitor
from repro.core.state import LinearState, average_states
from repro.core.variance import variance_from_drifts
from repro.exceptions import CommunicationError, ConfigurationError


def random_drifts(seed, num_workers=5, dimension=60, scale=1.0):
    rng = np.random.default_rng(seed)
    return [scale * rng.normal(size=dimension) for _ in range(num_workers)]


def monitor_estimate(monitor, drifts):
    states = [monitor.local_state(drift) for drift in drifts]
    return monitor.estimate(average_states(states))


class TestLinearMonitor:
    def test_state_contents(self):
        monitor = LinearMonitor(dimension=4, seed=0)
        drift = np.array([1.0, 2.0, 0.0, -1.0])
        state = monitor.local_state(drift)
        assert state.drift_sq_norm == pytest.approx(6.0)
        assert state.projection == pytest.approx(float(np.dot(monitor.direction, drift)))

    def test_direction_is_unit_norm(self):
        monitor = LinearMonitor(dimension=10, seed=1)
        assert np.linalg.norm(monitor.direction) == pytest.approx(1.0)

    def test_state_size_is_two_elements(self):
        monitor = LinearMonitor(dimension=100)
        assert monitor.state_num_elements(100) == 2

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_always_overestimates_variance(self, seed):
        monitor = LinearMonitor(dimension=60, seed=seed + 1)
        drifts = random_drifts(seed)
        estimate = monitor_estimate(monitor, drifts)
        true_variance = variance_from_drifts(drifts)
        assert estimate >= true_variance - 1e-9

    def test_perfect_direction_gives_tight_estimate(self):
        # When xi is exactly aligned with the average drift, H equals Var.
        drifts = random_drifts(3, num_workers=4, dimension=30)
        mean_drift = np.mean(drifts, axis=0)
        monitor = LinearMonitor(dimension=30, initial_direction=mean_drift)
        estimate = monitor_estimate(monitor, drifts)
        assert estimate == pytest.approx(variance_from_drifts(drifts), rel=1e-9)

    def test_on_synchronization_updates_direction(self):
        monitor = LinearMonitor(dimension=5, seed=0)
        new_global = np.array([1.0, 0.0, 0.0, 0.0, 0.0])
        previous = np.zeros(5)
        monitor.on_synchronization(new_global, previous)
        np.testing.assert_allclose(monitor.direction, [1.0, 0.0, 0.0, 0.0, 0.0])

    def test_zero_direction_is_allowed(self):
        monitor = LinearMonitor(dimension=3, seed=0)
        monitor.on_synchronization(np.zeros(3), np.zeros(3))
        np.testing.assert_array_equal(monitor.direction, np.zeros(3))
        drifts = random_drifts(0, num_workers=3, dimension=3)
        assert monitor_estimate(monitor, drifts) >= variance_from_drifts(drifts) - 1e-12

    def test_rejects_wrong_state_type(self):
        from repro.core.state import ExactState

        monitor = LinearMonitor(dimension=3)
        with pytest.raises(CommunicationError):
            monitor.estimate(ExactState(1.0, np.zeros(3)))

    def test_invalid_dimension(self):
        with pytest.raises(ConfigurationError):
            LinearMonitor(dimension=0)


class TestSketchMonitor:
    def test_state_size(self):
        monitor = SketchMonitor(depth=5, width=250)
        assert monitor.state_num_elements(10_000) == 1 + 5 * 250

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_overestimates_variance_with_high_probability(self, seed):
        monitor = SketchMonitor(depth=5, width=128, seed=17)
        drifts = random_drifts(seed, num_workers=4, dimension=80)
        estimate = monitor_estimate(monitor, drifts)
        true_variance = variance_from_drifts(drifts)
        # Allow a small slack: the guarantee is probabilistic (1 - delta).
        assert estimate >= true_variance * (1 - 0.15) - 1e-9

    def test_estimate_close_to_variance_for_large_sketch(self):
        monitor = SketchMonitor(depth=7, width=512, seed=3)
        drifts = random_drifts(11, num_workers=5, dimension=200)
        estimate = monitor_estimate(monitor, drifts)
        true_variance = variance_from_drifts(drifts)
        assert estimate == pytest.approx(true_variance, rel=0.3)

    def test_workers_share_the_same_sketch_operator(self):
        monitor = SketchMonitor(depth=3, width=32, seed=0)
        a = monitor.local_state(np.ones(50))
        b = monitor.local_state(np.ones(50))
        np.testing.assert_array_equal(a.sketch, b.sketch)

    def test_rejects_wrong_state_type(self):
        monitor = SketchMonitor(depth=3, width=16)
        with pytest.raises(CommunicationError):
            monitor.estimate(LinearState(1.0, 0.0))


class TestExactMonitor:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_recovers_exact_variance(self, seed):
        monitor = ExactMonitor()
        drifts = random_drifts(seed, num_workers=6, dimension=40)
        estimate = monitor_estimate(monitor, drifts)
        assert estimate == pytest.approx(variance_from_drifts(drifts), rel=1e-9, abs=1e-12)

    def test_state_size_is_full_dimension(self):
        assert ExactMonitor().state_num_elements(500) == 501


class TestMonitorOrdering:
    def test_exact_is_tighter_than_linear(self):
        """The exact monitor's estimate is never above LinearFDA's (both >= Var)."""
        drifts = random_drifts(5, num_workers=5, dimension=50)
        exact = monitor_estimate(ExactMonitor(), drifts)
        linear = monitor_estimate(LinearMonitor(dimension=50, seed=2), drifts)
        assert exact <= linear + 1e-9


class TestMakeMonitor:
    def test_factory_variants(self):
        assert isinstance(make_monitor("sketch", 100), SketchMonitor)
        assert isinstance(make_monitor("linear", 100), LinearMonitor)
        assert isinstance(make_monitor("exact", 100), ExactMonitor)

    def test_factory_passes_sketch_geometry(self):
        monitor = make_monitor("sketch", 100, sketch_depth=3, sketch_width=64)
        assert monitor.sketch_operator.shape == (3, 64)

    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            make_monitor("quantum", 100)
