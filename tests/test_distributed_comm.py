"""Tests for communication-cost models, trackers, and network models."""

import pytest

from repro.distributed.comm import (
    CommunicationCostModel,
    CommunicationTracker,
    NAIVE_COST_MODEL,
    RING_COST_MODEL,
)
from repro.distributed.network import (
    BALANCED_NETWORK,
    FL_NETWORK,
    HPC_NETWORK,
    NetworkModel,
    get_network,
)
from repro.exceptions import ConfigurationError


class TestCostModel:
    def test_naive_allreduce_bytes(self):
        assert NAIVE_COST_MODEL.allreduce_bytes(1000, 4) == 1000 * 4 * 4

    def test_ring_allreduce_volume(self):
        # Ring AllReduce moves 2(K-1)/K of the vector per worker, so the total
        # is 2(K-1)·n elements — roughly twice the paper-style upload-only count.
        ring = RING_COST_MODEL.allreduce_bytes(10_000, 8)
        assert ring == pytest.approx(2 * 7 * 10_000 * 4, rel=0.01)
        assert ring > NAIVE_COST_MODEL.allreduce_bytes(10_000, 8)

    def test_single_worker_costs_nothing(self):
        assert NAIVE_COST_MODEL.allreduce_bytes(1000, 1) == 0

    def test_empty_vector_costs_nothing(self):
        assert NAIVE_COST_MODEL.allreduce_bytes(0, 5) == 0

    def test_broadcast_bytes(self):
        assert NAIVE_COST_MODEL.broadcast_bytes(100, 5) == 100 * 4 * 4

    def test_invalid_scheme(self):
        with pytest.raises(ConfigurationError):
            CommunicationCostModel("gossip")

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            NAIVE_COST_MODEL.allreduce_bytes(-1, 2)
        with pytest.raises(ConfigurationError):
            NAIVE_COST_MODEL.allreduce_bytes(10, 0)


class TestTracker:
    def test_accumulates_by_category(self):
        tracker = CommunicationTracker()
        tracker.record_allreduce(100, 4, "model-sync")
        tracker.record_allreduce(2, 4, "fda-state")
        tracker.record_allreduce(2, 4, "fda-state")
        assert tracker.bytes_for("model-sync") == 100 * 4 * 4
        assert tracker.bytes_for("fda-state") == 2 * 2 * 4 * 4
        assert tracker.operations_for("fda-state") == 2
        assert tracker.total_bytes == tracker.bytes_for("model-sync") + tracker.bytes_for("fda-state")

    def test_reset(self):
        tracker = CommunicationTracker()
        tracker.record_allreduce(10, 2, "x")
        tracker.reset()
        assert tracker.total_bytes == 0
        assert tracker.operations_for("x") == 0

    def test_snapshot(self):
        tracker = CommunicationTracker()
        tracker.record_broadcast(10, 3, "model-sync")
        snapshot = tracker.snapshot()
        assert snapshot["total_bytes"] == tracker.total_bytes
        assert "model-sync" in snapshot["bytes_by_category"]

    def test_unknown_category_is_zero(self):
        assert CommunicationTracker().bytes_for("nothing") == 0


class TestNetworkModel:
    def test_transfer_time_scales_with_bytes(self):
        network = NetworkModel("test", bandwidth_bits_per_second=1e9, latency_seconds=0.0)
        assert network.transfer_time(1e9 / 8) == pytest.approx(1.0)

    def test_latency_added_per_operation(self):
        network = NetworkModel("test", bandwidth_bits_per_second=1e12, latency_seconds=0.01)
        assert network.transfer_time(1000, num_operations=5) == pytest.approx(0.05, rel=0.01)

    def test_wall_time_combines_compute_and_comm(self):
        network = NetworkModel("test", bandwidth_bits_per_second=1e9)
        total = network.wall_time(
            communication_bytes=1e9 / 8, num_operations=0, parallel_steps=100,
            seconds_per_step=0.01,
        )
        assert total == pytest.approx(2.0)

    def test_fl_network_is_much_slower_than_hpc(self):
        num_bytes = 1e9
        assert FL_NETWORK.transfer_time(num_bytes) > 50 * HPC_NETWORK.transfer_time(num_bytes)

    def test_balanced_between_the_two(self):
        num_bytes = 1e9
        assert (
            HPC_NETWORK.transfer_time(num_bytes)
            < BALANCED_NETWORK.transfer_time(num_bytes)
            < FL_NETWORK.transfer_time(num_bytes)
        )

    def test_get_network(self):
        assert get_network("fl") is FL_NETWORK
        with pytest.raises(ConfigurationError):
            get_network("wifi")

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigurationError):
            NetworkModel("bad", bandwidth_bits_per_second=0.0)
