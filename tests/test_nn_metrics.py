"""Tests for classification metrics."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn.metrics import accuracy, confusion_matrix, top_k_accuracy


class TestAccuracy:
    def test_from_predicted_labels(self):
        assert accuracy(np.array([0, 1, 1, 0]), np.array([0, 1, 0, 0])) == 0.75

    def test_from_logits(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [5.0, 4.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_empty_inputs(self):
        assert accuracy(np.zeros((0, 3)), np.zeros(0, dtype=int)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            accuracy(np.array([0, 1]), np.array([0, 1, 2]))


class TestTopKAccuracy:
    def test_top1_equals_accuracy(self):
        logits = np.random.default_rng(0).normal(size=(20, 5))
        labels = np.random.default_rng(1).integers(0, 5, size=20)
        assert top_k_accuracy(logits, labels, k=1) == pytest.approx(accuracy(logits, labels))

    def test_top_k_grows_with_k(self):
        logits = np.random.default_rng(2).normal(size=(50, 10))
        labels = np.random.default_rng(3).integers(0, 10, size=50)
        values = [top_k_accuracy(logits, labels, k=k) for k in (1, 3, 5, 10)]
        assert values == sorted(values)
        assert values[-1] == 1.0  # k = num_classes always hits

    def test_k_larger_than_classes_is_clamped(self):
        logits = np.eye(3)
        assert top_k_accuracy(logits, np.array([0, 1, 2]), k=100) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.eye(3), np.array([0, 1, 2]), k=0)

    def test_rejects_1d_logits(self):
        with pytest.raises(ShapeError):
            top_k_accuracy(np.zeros(3), np.array([0]), k=1)


class TestConfusionMatrix:
    def test_diagonal_for_perfect_predictions(self):
        labels = np.array([0, 1, 2, 1])
        matrix = confusion_matrix(labels, labels, 3)
        np.testing.assert_array_equal(matrix, np.diag([1, 2, 1]))

    def test_off_diagonal_counts(self):
        predictions = np.array([1, 1])
        labels = np.array([0, 0])
        matrix = confusion_matrix(predictions, labels, 2)
        assert matrix[0, 1] == 2 and matrix.sum() == 2

    def test_accepts_logits(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        matrix = confusion_matrix(logits, np.array([1, 0]), 2)
        np.testing.assert_array_equal(matrix, np.eye(2, dtype=int))

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            confusion_matrix(np.array([0]), np.array([0, 1]), 2)
