"""Property suite of the population plane.

The population plane's contract has two bit-exactness halves:

* **Cohort parity** — training through a :class:`ClientPopulation` with
  ``N == K`` clients (the workers' own shards) and cohort=all must be
  *bit-identical* to training the materialized cluster directly: binding a
  full cohort is fresh-reset followed by the client's own snapshot overlay,
  an identity round-trip executing identical arithmetic.  Checked across
  strategies (FDA / FedOpt / Local-SGD), both engines, both dtypes, with
  compression+error-feedback and RNG-stateful Dropout models, and under
  Hypothesis-drawn worker counts / budgets / round counts.
* **Eviction transparency** — spilling a stateful client to disk and
  rematerializing it on its next binding must reproduce the never-evicted
  trajectory bit-for-bit (Adam moments, error-feedback residuals, RNG
  stream states, per-client step counts), for arbitrary eviction orders and
  memory budgets.

The rest of the suite covers the sampler's distributional invariants, the
LRU store's budget accounting, the client directory's O(1) descriptors, the
weighted-aggregation seams, the cohort-aware model-pool fix in
:class:`~repro.experiments.setup.SetupCache`, and the experiment-layer
plumbing (fingerprints, persistence, run labels).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers.parity import (
    EXECUTIONS,
    dropout_factory,
    make_cluster,
    mlp_factory,
    run_population_parity,
)
from repro.compression import CompressionConfig
from repro.data.datasets import Dataset
from repro.data.synthetic import gaussian_blobs
from repro.exceptions import ConfigurationError, ExperimentError
from repro.experiments.executor import workload_fingerprint
from repro.experiments.persistence import result_from_dict, result_to_dict
from repro.experiments.run import TrainingRun
from repro.experiments.setup import (
    SetupCache,
    WorkloadConfig,
    build_cluster,
    make_optimizer,
)
from repro.optim.server import FedAvg
from repro.population import (
    ClientDirectory,
    ClientPopulation,
    ClientStateStore,
    CohortSampler,
    PopulationConfig,
)
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.fedopt import fedadam_strategy
from repro.strategies.local_sgd import LocalSGDStrategy

pytestmark = pytest.mark.population

SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

STRATEGIES = {
    "local-sgd": lambda: LocalSGDStrategy(tau=3),
    "linear-fda": lambda: FDAStrategy(threshold=0.5, variant="linear"),
    "fedadam": fedadam_strategy,
}


# -- cohort=all parity (satellite 1) ---------------------------------------------


class TestCohortParity:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_population_mode_is_bit_identical(self, name, dtype):
        run_population_parity(STRATEGIES[name], rounds=5, dtype=dtype, exact=True)

    def test_parity_survives_dropout_rng_state(self):
        # RNG-stateful Dropout layers: the snapshot must carry every layer's
        # private mask stream across unbind/bind.
        run_population_parity(
            STRATEGIES["local-sgd"],
            rounds=5,
            model_factory=dropout_factory,
            sample_shape=(6,),
            num_classes=3,
        )

    def test_parity_with_error_feedback_compression(self):
        # The (K, d) error-feedback residual rows must round-trip through
        # client snapshots bit-exactly.
        run_population_parity(
            STRATEGIES["local-sgd"],
            rounds=5,
            compression=CompressionConfig("topk", ratio=0.25, error_feedback=True),
        )

    @SETTINGS
    @given(
        num_workers=st.integers(min_value=2, max_value=5),
        budget=st.one_of(st.none(), st.integers(min_value=1, max_value=6)),
        tau=st.integers(min_value=1, max_value=4),
        rounds=st.integers(min_value=2, max_value=5),
    )
    def test_parity_property(self, num_workers, budget, tau, rounds):
        run_population_parity(
            lambda: LocalSGDStrategy(tau=tau),
            rounds=rounds,
            num_workers=num_workers,
            memory_budget=budget,
            executions=("batched",),
        )


# -- eviction transparency (satellite 2) -----------------------------------------


def _run_population(rounds, budget, evict_after_round=None, num_clients=6, cohort=2):
    """One deterministic sampled-population run; returns its observables.

    ``evict_after_round`` maps round index -> list of client ids to
    force-evict from the store after that round's unbind (unknown ids are
    skipped), so Hypothesis can drive arbitrary eviction orders.
    """
    cluster = make_cluster("batched", num_workers=cohort)
    strategy = LocalSGDStrategy(tau=2).attach(cluster)
    rng = np.random.default_rng(123)
    shards = [
        Dataset(rng.normal(size=(30, 6)), rng.integers(0, 3, size=30), 3)
        for _ in range(num_clients)
    ]
    population = ClientPopulation(
        PopulationConfig(
            num_clients=num_clients,
            cohort_size=cohort,
            weighting="data-size",
            memory_budget=budget,
        ),
        shards=shards,
        seed=99,
        client_seed_fn=lambda client_id: 1000 + client_id,
    )
    population.attach(cluster, strategy)
    losses = []
    for round_index in range(rounds):
        losses.append(population.run_round().mean_loss)
        if evict_after_round:
            for client_id in evict_after_round.get(round_index, []):
                population.store.evict(client_id)
    return {
        "losses": losses,
        "params": np.array(cluster.parameter_matrix),
        "bytes": cluster.total_bytes,
        "client_steps": dict(population.client_steps),
        "optimizer_steps": [w.optimizer.step_count for w in cluster.workers],
        "population": population,
    }


class TestEvictionTransparency:
    @SETTINGS
    @given(budget=st.integers(min_value=1, max_value=4))
    def test_budget_eviction_is_bit_exact(self, budget):
        reference = _run_population(rounds=8, budget=None)
        squeezed = _run_population(rounds=8, budget=budget)
        np.testing.assert_array_equal(reference["params"], squeezed["params"])
        assert reference["losses"] == squeezed["losses"]
        assert reference["bytes"] == squeezed["bytes"]
        assert reference["client_steps"] == squeezed["client_steps"]
        assert reference["optimizer_steps"] == squeezed["optimizer_steps"]
        # The squeezed run actually exercised the spill path.
        assert squeezed["population"].store.evictions > 0
        assert squeezed["population"].store.peak_resident <= budget

    @SETTINGS
    @given(
        orders=st.lists(
            st.lists(st.integers(min_value=0, max_value=5), max_size=4),
            min_size=8,
            max_size=8,
        )
    )
    def test_arbitrary_eviction_orders_are_bit_exact(self, orders):
        reference = _run_population(rounds=8, budget=None)
        evicted = _run_population(
            rounds=8,
            budget=None,
            evict_after_round={i: order for i, order in enumerate(orders)},
        )
        np.testing.assert_array_equal(reference["params"], evicted["params"])
        assert reference["losses"] == evicted["losses"]
        assert reference["client_steps"] == evicted["client_steps"]

    def test_evict_then_rebind_restores_adam_state_exactly(self):
        # Direct single-client check: run, snapshot the live slot state, force
        # a disk round-trip, rebind, and compare the slot bit-for-bit.
        cluster = make_cluster("batched", num_workers=2)
        strategy = LocalSGDStrategy(tau=2).attach(cluster)
        population = ClientPopulation(
            PopulationConfig(num_clients=2, cohort_size=2, weighting="uniform"),
            shards=[w.dataset for w in cluster.workers],
            client_seed_fn=lambda client_id: client_id,
        )
        population.attach(cluster, strategy)
        for _ in range(3):
            population.run_round()
        expected_params = np.array(cluster.parameter_matrix)
        expected_m = np.array(cluster.workers[0].optimizer._m)
        expected_v = np.array(cluster.workers[0].optimizer._v)
        expected_steps = cluster.workers[0].optimizer.step_count
        expected_rng = cluster.workers[0]._sampler._rng.bit_generator.state

        assert population.store.evict(0) and population.store.evict(1)
        assert population.store.resident_count == 0
        population.bind_cohort(np.array([0, 1]))
        np.testing.assert_array_equal(cluster.parameter_matrix, expected_params)
        np.testing.assert_array_equal(cluster.workers[0].optimizer._m, expected_m)
        np.testing.assert_array_equal(cluster.workers[0].optimizer._v, expected_v)
        assert cluster.workers[0].optimizer.step_count == expected_steps
        assert cluster.workers[0]._sampler._rng.bit_generator.state == expected_rng
        assert population.store.spill_loads == 2
        population.unbind_cohort()


# -- cohort sampler ---------------------------------------------------------------


class TestCohortSampler:
    @SETTINGS
    @given(
        num_clients=st.integers(min_value=10, max_value=10_000),
        cohort=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_fixed_draws_distinct_sorted_in_range(self, num_clients, cohort, seed):
        config = PopulationConfig(num_clients=num_clients, cohort_size=cohort)
        sampler = CohortSampler(config, seed=seed)
        for _ in range(3):
            drawn = sampler.draw()
            assert drawn.shape == (cohort,)
            assert len(set(drawn.tolist())) == cohort
            assert np.all(np.diff(drawn) > 0)
            assert drawn.min() >= 0 and drawn.max() < num_clients

    @SETTINGS
    @given(
        act_prob=st.floats(min_value=0.001, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_bernoulli_count_is_clamped(self, act_prob, seed):
        config = PopulationConfig(
            num_clients=500, cohort_size=6, sampling="bernoulli", act_prob=act_prob
        )
        sampler = CohortSampler(config, seed=seed)
        for _ in range(5):
            drawn = sampler.draw()
            assert 1 <= drawn.size <= 6
            assert len(set(drawn.tolist())) == drawn.size

    def test_draws_are_deterministic_per_seed(self):
        config = PopulationConfig(num_clients=1000, cohort_size=5)
        first = [CohortSampler(config, seed=7).draw() for _ in range(1)]
        second = [CohortSampler(config, seed=7).draw() for _ in range(1)]
        np.testing.assert_array_equal(first[0], second[0])
        assert not np.array_equal(
            CohortSampler(config, seed=7).draw(), CohortSampler(config, seed=8).draw()
        )

    def test_cohort_all_consumes_no_rng(self):
        config = PopulationConfig(num_clients=6, cohort_size=6)
        sampler = CohortSampler(config, seed=3)
        state_before = sampler._rng.bit_generator.state
        np.testing.assert_array_equal(sampler.draw(), np.arange(6))
        np.testing.assert_array_equal(sampler.draw(), np.arange(6))
        assert sampler._rng.bit_generator.state == state_before


# -- the LRU store ----------------------------------------------------------------


def _snapshot(value: float) -> dict:
    rng = np.random.default_rng(int(value))
    return {
        "params": rng.normal(size=17),
        "rng": rng.bit_generator.state,
        "steps": int(value),
    }


class TestClientStateStore:
    @SETTINGS
    @given(
        budget=st.integers(min_value=1, max_value=5),
        saves=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=30),
    )
    def test_resident_set_never_exceeds_budget(self, budget, saves):
        # No spill_dir: the store lazily opens its own TemporaryDirectory
        # (tmp_path is function-scoped and clashes with @given).
        store = ClientStateStore(budget=budget)
        for client_id in saves:
            store.save(client_id, _snapshot(client_id))
            assert store.resident_count <= budget
        assert store.peak_resident <= budget
        assert store.stateful_count == len(set(saves))

    def test_spilled_snapshot_round_trips_bit_exactly(self, tmp_path):
        store = ClientStateStore(budget=1, spill_dir=tmp_path)
        original = _snapshot(42)
        store.save(42, original)
        store.save(43, _snapshot(43))  # evicts 42 to disk
        assert 42 in store and store.resident_count == 1
        loaded = store.load(42)
        np.testing.assert_array_equal(loaded["params"], original["params"])
        assert loaded["rng"] == original["rng"]
        assert loaded["steps"] == original["steps"]
        assert store.spill_loads == 1

    def test_unknown_client_loads_none(self):
        assert ClientStateStore(budget=2).load(7) is None

    def test_invalid_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            ClientStateStore(budget=0)


# -- the client directory ---------------------------------------------------------


class TestClientDirectory:
    def test_virtual_descriptors_are_o1_and_deterministic(self):
        train = gaussian_blobs(200, feature_dim=4, num_classes=3, seed=0)
        config = PopulationConfig(
            num_clients=10**6, cohort_size=8, min_client_samples=10, max_client_samples=20
        )
        directory = ClientDirectory(config, train_dataset=train, seed=5)
        # Far-apart ids resolve instantly (no per-client registry exists).
        for client_id in (0, 123_456, 10**6 - 1):
            descriptor = directory.descriptor(client_id)
            assert descriptor == directory.descriptor(client_id)
            assert 10 <= descriptor.num_samples <= 20
            shard = directory.shard(client_id)
            assert len(shard) == descriptor.num_samples

    def test_explicit_shards_must_cover_population(self):
        train = gaussian_blobs(50, feature_dim=4, num_classes=3, seed=0)
        config = PopulationConfig(num_clients=3, cohort_size=2)
        with pytest.raises(ConfigurationError):
            ClientDirectory(config, shards=[train])
        with pytest.raises(ConfigurationError):
            ClientDirectory(config)  # no provider at all
        with pytest.raises(ConfigurationError):
            ClientDirectory(config, shards=[train] * 3, train_dataset=train)

    def test_out_of_range_client_rejected(self):
        train = gaussian_blobs(50, feature_dim=4, num_classes=3, seed=0)
        config = PopulationConfig(num_clients=4, cohort_size=2)
        directory = ClientDirectory(config, train_dataset=train)
        with pytest.raises(ConfigurationError):
            directory.shard(4)
        with pytest.raises(ConfigurationError):
            directory.descriptor(-1)


# -- weighted aggregation ---------------------------------------------------------


class TestWeightedAggregation:
    def test_cluster_weighted_mean_matches_manual(self):
        cluster = make_cluster("sequential", num_workers=3)
        weights = np.array([1.0, 2.0, 5.0])
        cluster.set_aggregation_weights(weights)
        expected = (weights / weights.sum()) @ cluster.parameter_matrix
        np.testing.assert_allclose(cluster.average_parameters(), expected, rtol=1e-12)
        cluster.set_aggregation_weights(None)
        np.testing.assert_array_equal(
            cluster.average_parameters(), cluster.parameter_matrix.mean(axis=0)
        )

    def test_invalid_weights_rejected(self):
        cluster = make_cluster("sequential", num_workers=3)
        with pytest.raises(Exception):
            cluster.set_aggregation_weights(np.array([1.0, 2.0]))  # wrong shape
        with pytest.raises(ConfigurationError):
            cluster.set_aggregation_weights(np.array([1.0, -1.0, 2.0]))
        with pytest.raises(ConfigurationError):
            cluster.set_aggregation_weights(np.zeros(3))

    def test_server_optimizer_weighted_aggregate(self):
        rng = np.random.default_rng(0)
        global_params = rng.normal(size=9)
        clients = rng.normal(size=(4, 9))
        weights = np.array([3.0, 1.0, 0.0, 2.0])
        updated = FedAvg().aggregate(global_params, clients, weights=weights)
        np.testing.assert_allclose(
            updated, (weights / weights.sum()) @ clients, rtol=1e-12
        )
        # None keeps the exact mean path (FedAvg applies it as a
        # pseudo-gradient: global - (global - mean), compared bit-for-bit).
        np.testing.assert_array_equal(
            FedAvg().aggregate(global_params, clients),
            global_params - (global_params - clients.mean(axis=0)),
        )
        with pytest.raises(ConfigurationError):
            FedAvg().aggregate(global_params, clients, weights=np.zeros(4))

    def test_uniform_weighting_keeps_exact_mean_path(self):
        # The parity contract hinges on weights=None for uniform full cohorts.
        cluster = make_cluster("sequential", num_workers=2)
        strategy = LocalSGDStrategy(tau=1).attach(cluster)
        population = ClientPopulation(
            PopulationConfig(num_clients=2, cohort_size=2, weighting="uniform"),
            shards=[w.dataset for w in cluster.workers],
            client_seed_fn=lambda client_id: client_id,
        )
        population.attach(cluster, strategy)
        population.bind_cohort(np.array([0, 1]))
        assert cluster.aggregation_weights is None
        population.unbind_cohort()

    def test_data_size_weights_follow_bound_shards(self):
        cluster = make_cluster("sequential", num_workers=2)
        strategy = LocalSGDStrategy(tau=1).attach(cluster)
        rng = np.random.default_rng(3)
        shards = [
            Dataset(rng.normal(size=(n, 6)), rng.integers(0, 3, size=n), 3)
            for n in (10, 25, 40)
        ]
        population = ClientPopulation(
            PopulationConfig(num_clients=3, cohort_size=2, weighting="data-size"),
            shards=shards,
            client_seed_fn=lambda client_id: client_id,
        )
        population.attach(cluster, strategy)
        population.bind_cohort(np.array([0, 2]))
        np.testing.assert_array_equal(
            cluster.aggregation_weights, np.array([10.0, 40.0])
        )
        population.unbind_cohort()


# -- partial cohorts --------------------------------------------------------------


class TestPartialCohorts:
    def test_partial_cohort_masks_unbound_slots(self):
        cluster = make_cluster("batched", num_workers=4)
        strategy = FDAStrategy(threshold=1e9).attach(cluster)
        rng = np.random.default_rng(5)
        shards = [
            Dataset(rng.normal(size=(20, 6)), rng.integers(0, 3, size=20), 3)
            for _ in range(8)
        ]
        population = ClientPopulation(
            PopulationConfig(num_clients=8, cohort_size=4, weighting="data-size"),
            shards=shards,
            client_seed_fn=lambda client_id: client_id,
        )
        population.attach(cluster, strategy)
        population.bind_cohort(np.array([1, 5]))  # 2 of 4 slots bound
        assert cluster.population_mask.tolist() == [True, True, False, False]
        assert cluster.aggregation_weights[2] == 0.0
        stale = np.array(cluster.parameter_matrix[2:])
        before = [w.steps_performed for w in cluster.workers]
        result = strategy.run_round()
        # Unbound slots neither step nor change bits.
        assert [w.steps_performed for w in cluster.workers[:2]] == [
            s + 1 for s in before[:2]
        ]
        assert [w.steps_performed for w in cluster.workers[2:]] == before[2:]
        np.testing.assert_array_equal(cluster.parameter_matrix[2:], stale)
        assert result.steps_advanced == 1
        population.unbind_cohort()
        assert sorted(population.client_steps) == [1, 5]

    def test_double_bind_rejected(self):
        cluster = make_cluster("sequential", num_workers=2)
        strategy = LocalSGDStrategy(tau=1).attach(cluster)
        population = ClientPopulation(
            PopulationConfig(num_clients=2, cohort_size=2),
            shards=[w.dataset for w in cluster.workers],
        )
        population.attach(cluster, strategy)
        population.bind_cohort(np.array([0, 1]))
        with pytest.raises(ExperimentError):
            population.bind_cohort(np.array([0, 1]))
        population.unbind_cohort()
        with pytest.raises(ExperimentError):
            population.unbind_cohort()


# -- setup-cache pools (satellite 4) ----------------------------------------------


def _blob_workload(**overrides):
    train = gaussian_blobs(240, feature_dim=6, num_classes=3, seed=0)
    test = gaussian_blobs(60, feature_dim=6, num_classes=3, seed=1)
    defaults = dict(
        name="blobs-pop",
        model_factory=mlp_factory,
        train_dataset=train,
        test_dataset=test,
        optimizer_factory=make_optimizer("adam", learning_rate=0.01),
        num_workers=4,
        batch_size=8,
        seed=0,
    )
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


class TestSetupCachePools:
    def test_pool_is_keyed_by_physical_slots_not_clients(self):
        cache = SetupCache()
        materialized = _blob_workload(num_workers=4)
        populated = _blob_workload().with_population(
            PopulationConfig(num_clients=64, cohort_size=4)
        )
        first = cache.worker_models(materialized)
        second = cache.worker_models(populated)
        # Same factory, same slot count: one pool serves both cells.
        assert first is not None and len(first) == 4
        assert second is not None and len(second) == 4
        assert cache.model_misses == 1 and cache.model_hits == 1

    def test_cohort_change_builds_a_new_right_sized_pool(self):
        cache = SetupCache()
        small = _blob_workload().with_population(
            PopulationConfig(num_clients=64, cohort_size=4)
        )
        large = _blob_workload().with_population(
            PopulationConfig(num_clients=64, cohort_size=6)
        )
        assert len(cache.worker_models(small)) == 4
        assert len(cache.worker_models(large)) == 6
        assert cache.model_misses == 2

    def test_memoized_population_build_matches_eager(self):
        workload = _blob_workload().with_population(
            PopulationConfig(num_clients=32, cohort_size=4)
        )
        eager_cluster, _ = build_cluster(workload)
        cached_cluster, _ = build_cluster(workload, SetupCache())
        np.testing.assert_array_equal(
            eager_cluster.parameter_matrix, cached_cluster.parameter_matrix
        )


# -- experiment-layer plumbing ----------------------------------------------------


class TestExperimentPlumbing:
    def test_with_population_snaps_worker_count(self):
        workload = _blob_workload(num_workers=2).with_population(
            PopulationConfig(num_clients=100, cohort_size=6)
        )
        assert workload.num_workers == 6
        assert workload.with_population(None).population is None
        with pytest.raises(ConfigurationError):
            _blob_workload(
                num_workers=3,
                population=PopulationConfig(num_clients=100, cohort_size=6),
            )

    def test_population_changes_the_sweep_fingerprint(self):
        cache = SetupCache()
        base = _blob_workload()
        populated = base.with_population(PopulationConfig(num_clients=50, cohort_size=4))
        repopulated = base.with_population(PopulationConfig(num_clients=51, cohort_size=4))
        fingerprints = [
            workload_fingerprint(config, cache)
            for config in (base, populated, repopulated)
        ]
        assert fingerprints[0] != fingerprints[1]
        assert fingerprints[1] != fingerprints[2]
        assert fingerprints[1] == workload_fingerprint(populated, cache)

    def test_run_result_population_label_persists(self):
        workload = _blob_workload().with_population(
            PopulationConfig(num_clients=32, cohort_size=4)
        )
        cluster, test_dataset = build_cluster(workload)
        run = TrainingRun(accuracy_target=0.99, max_steps=6, eval_every_steps=3)
        result = run.execute(
            LocalSGDStrategy(tau=2), cluster, test_dataset, workload_name=workload.name
        )
        assert result.population.startswith("pop(N=32,C=4")
        round_trip = result_from_dict(result_to_dict(result))
        assert round_trip.population == result.population
        # Per-client step accounting: every round, 4 bound clients stepped.
        population = cluster.population
        assert sum(population.client_steps.values()) == 4 * result.parallel_steps
        assert population.peak_resident_clients <= workload.population.effective_memory_budget

    def test_bernoulli_population_training_run(self):
        workload = _blob_workload().with_population(
            PopulationConfig(
                num_clients=64, cohort_size=4, sampling="bernoulli", act_prob=0.05
            )
        )
        cluster, test_dataset = build_cluster(workload)
        run = TrainingRun(accuracy_target=0.99, max_steps=8, eval_every_steps=4)
        result = run.execute(
            FDAStrategy(threshold=0.5), cluster, test_dataset, workload_name=workload.name
        )
        population = cluster.population
        assert population.rounds_completed == result.parallel_steps
        assert 0 < len(population.client_steps) <= 4 * population.rounds_completed
