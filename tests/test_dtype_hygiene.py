"""Dtype hygiene lint: no new hardcoded ``np.float64`` on the plane path.

The dtype-parametric refactor routes every hot-path allocation through the
plane dtype (``params.dtype`` / ``cluster.dtype`` /
``repro.backend.resolve_dtype``).  A hardcoded ``np.float64`` in plane-path
code silently upcasts a float32 run — a full-matrix copy plus doubled
bandwidth that no test of float64 mode would ever notice.  This lint greps
the source tree and fails on any ``np.float64`` outside the explicit
allowlist below, so new code must either thread the active dtype or document
itself here as deliberately float64.

The allowlist is the contract documented in ``repro/backend.py`` and
ARCHITECTURE.md: the seam itself, build-time initializers whose output is
re-cast once at plane construction, reference-path analysis that never runs
per step, and the few accumulators that deliberately stay double precision
(AMS sketch counters, per-worker loss scalars, the linear monitor's
direction ξ, timeline seconds).
"""

from __future__ import annotations

import re
from pathlib import Path

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Modules (relative to ``src/repro``) allowed to spell ``np.float64``.
#: Every entry must have a reason — this list is the documentation.
FLOAT64_ALLOWLIST = {
    # The seam itself: owns DEFAULT_DTYPE and the supported-dtype registry.
    "backend.py",
    # Build-time weight initializers: models are built float64 and converted
    # once by the parameter plane (the one sanctioned cast).
    "nn/initializers.py",
    # BatchNorm's pre-plane buffer allocation (rebound by the plane) and the
    # float64 default of Dropout.sample_mask's dtype parameter.
    "nn/layers.py",
    # one_hot's float64 default (callers on the plane path pass the dtype).
    "nn/functional.py",
    # Per-worker loss *scalars* deliberately accumulate in float64.
    "nn/losses.py",
    # Promote-to-float64 fallbacks for non-float inputs (int gradients, object
    # arrays); float32/float64 pass through untouched.
    "optim/base.py",
    "optim/server.py",
    "compression/kernels.py",
    "core/state.py",
    # AMS sketch counters are float64 by proven-variance-bound design.
    "sketch/ams.py",
    # The linear monitor's analysis direction ξ stays float64.
    "core/monitor.py",
    # Reference-path analysis: offline, never on the per-step path.
    "core/theta.py",
    "core/variance.py",
    "experiments/results.py",
    "experiments/kde.py",
    # Dataset ingestion; batches are cast to the model dtype at forward time.
    "data/datasets.py",
    "data/features.py",
    # Virtual-time accounting (seconds, not streamed tensors).
    "core/timeline.py",
    # Fault-plane bookkeeping: crash clocks are virtual-time seconds, like
    # the timeline's — never part of a streamed tensor.
    "faults/injector.py",
    # Checkpoint restore writes the monitor's direction ξ back in the same
    # deliberate float64 that core/monitor.py keeps it in.
    "strategies/fda_strategy.py",
    # Aggregation-weight metadata (population plane): O(K) sample-count /
    # mask vectors normalized in double precision, cast to the plane dtype
    # only at the weighted-mean matmul — never a streamed (K, d) tensor.
    "distributed/weights.py",
    # Serving plane: staleness weights are O(K) aggregation metadata (the
    # distributed/weights.py rationale), and latency percentiles / P²
    # marker heights are virtual-time seconds (the core/timeline.py
    # rationale) — neither is ever a streamed (K, d) tensor.
    "serving/aggregation.py",
    "serving/harness.py",
    "serving/metrics.py",
}

_PATTERN = re.compile(r"np\.float64")


def _code_lines(path: Path):
    """Source lines with trailing ``#`` comments stripped (strings kept)."""
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        yield number, line.split("#", 1)[0]


def test_no_new_hardcoded_float64_outside_the_allowlist():
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        relative = path.relative_to(SRC_ROOT).as_posix()
        if relative in FLOAT64_ALLOWLIST:
            continue
        for number, code in _code_lines(path):
            if _PATTERN.search(code):
                offenders.append(f"src/repro/{relative}:{number}: {code.strip()}")
    assert not offenders, (
        "hardcoded np.float64 on the plane path — thread the active dtype "
        "(params.dtype / cluster.dtype / repro.backend.resolve_dtype) or add "
        "the module to FLOAT64_ALLOWLIST with a reason:\n" + "\n".join(offenders)
    )


def test_allowlist_entries_exist():
    """Stale allowlist entries hide future regressions — prune them."""
    missing = [entry for entry in FLOAT64_ALLOWLIST if not (SRC_ROOT / entry).exists()]
    assert not missing, f"FLOAT64_ALLOWLIST names deleted modules: {missing}"
