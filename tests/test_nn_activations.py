"""Tests for activation functions and their derivatives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ConfigurationError
from repro.nn.activations import (
    ELU,
    GELU,
    LEAKY_RELU,
    LINEAR,
    RELU,
    SIGMOID,
    TANH,
    get_activation,
    log_softmax,
    softmax,
)

ALL_ACTIVATIONS = [RELU, LEAKY_RELU, SIGMOID, TANH, LINEAR, GELU, ELU]


def _numerical_derivative(activation, x, epsilon=1e-6):
    return (activation.forward(x + epsilon) - activation.forward(x - epsilon)) / (2 * epsilon)


class TestForwardValues:
    def test_relu(self):
        x = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        np.testing.assert_array_equal(RELU.forward(x), [0.0, 0.0, 0.0, 0.5, 2.0])

    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-10, 10, 101)
        y = SIGMOID.forward(x)
        assert np.all((y > 0) & (y < 1))
        np.testing.assert_allclose(y + SIGMOID.forward(-x), 1.0, atol=1e-12)

    def test_sigmoid_extreme_values_are_stable(self):
        y = SIGMOID.forward(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(y))

    def test_tanh(self):
        np.testing.assert_allclose(TANH.forward(np.array([0.0])), [0.0])

    def test_linear_identity(self):
        x = np.array([[1.0, -2.0]])
        np.testing.assert_array_equal(LINEAR.forward(x), x)

    def test_gelu_at_zero(self):
        assert GELU.forward(np.array([0.0]))[0] == pytest.approx(0.0)

    def test_elu_negative_saturates(self):
        assert ELU.forward(np.array([-100.0]))[0] == pytest.approx(-1.0, abs=1e-6)


class TestDerivatives:
    @pytest.mark.parametrize("activation", ALL_ACTIVATIONS, ids=lambda a: a.name)
    def test_gradient_matches_numerical(self, activation):
        x = np.linspace(-2.0, 2.0, 41) + 0.013  # avoid the ReLU kink at exactly 0
        upstream = np.ones_like(x)
        cached = x if activation.cache_input else activation.forward(x)
        analytic = activation.gradient(upstream, cached)
        numerical = _numerical_derivative(activation, x)
        np.testing.assert_allclose(analytic, numerical, rtol=1e-4, atol=1e-6)

    def test_gradient_scales_with_upstream(self):
        x = np.array([0.5, 1.5])
        out = TANH.forward(x)
        g1 = TANH.gradient(np.ones_like(x), out)
        g3 = TANH.gradient(3.0 * np.ones_like(x), out)
        np.testing.assert_allclose(g3, 3.0 * g1)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [-5.0, 0.0, 5.0]])
        probs = softmax(logits, axis=1)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_log_softmax_consistent(self):
        logits = np.array([[0.3, -1.2, 2.0]])
        np.testing.assert_allclose(np.exp(log_softmax(logits)), softmax(logits))

    @settings(max_examples=30, deadline=None)
    @given(
        arrays(
            np.float64,
            (3, 5),
            elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
        )
    )
    def test_softmax_always_valid_distribution(self, logits):
        probs = softmax(logits, axis=1)
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)


class TestGetActivation:
    def test_by_name(self):
        assert get_activation("relu") is RELU
        assert get_activation("gelu") is GELU

    def test_none_is_linear(self):
        assert get_activation(None) is LINEAR

    def test_instance_passthrough(self):
        assert get_activation(TANH) is TANH

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_activation("swishy")
