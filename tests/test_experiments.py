"""Tests for the experiment harness: setup, runs, results, sweeps, KDE, reporting."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ExperimentError
from repro.experiments.kde import kde_density, log_kde_summary
from repro.experiments.registry import table2
from repro.experiments.reporting import (
    format_comparison,
    format_results_table,
    format_run_history,
)
from repro.experiments.results import ResultsTable, best_run, compare_strategies
from repro.experiments.run import RunResult, TrainingRun
from repro.experiments.setup import WorkloadConfig, build_cluster, make_optimizer
from repro.experiments.sweep import sweep_strategies, sweep_theta, sweep_workers
from repro.optim.adam import Adam, AdamW
from repro.optim.sgd import SGD
from repro.strategies.fda_strategy import FDAStrategy
from repro.strategies.synchronous import SynchronousStrategy
from repro.utils.runlog import RunLogger


def quick_run(**kwargs):
    defaults = dict(accuracy_target=0.85, max_steps=60, eval_every_steps=15)
    defaults.update(kwargs)
    return TrainingRun(**defaults)


def fake_result(strategy="A", comm=1000, steps=100, reached=True, accuracy=0.9):
    return RunResult(
        strategy=strategy,
        workload="w",
        reached_target=reached,
        accuracy_target=0.9,
        final_accuracy=accuracy,
        best_accuracy=accuracy,
        communication_bytes=comm,
        parallel_steps=steps,
        synchronizations=steps // 10,
        evaluations=3,
    )


class TestMakeOptimizer:
    def test_known_optimizers(self):
        assert isinstance(make_optimizer("adam")(), Adam)
        assert isinstance(make_optimizer("adamw")(), AdamW)
        assert isinstance(make_optimizer("sgd")(), SGD)
        nesterov = make_optimizer("sgd-nm")()
        assert isinstance(nesterov, SGD) and nesterov.nesterov

    def test_kwargs_override_defaults(self):
        optimizer = make_optimizer("adam", learning_rate=0.5)()
        assert optimizer.learning_rate == 0.5

    def test_unknown_optimizer(self):
        with pytest.raises(ConfigurationError):
            make_optimizer("lion")


class TestBuildCluster:
    def test_builds_requested_workers(self, blobs_workload):
        cluster, test_dataset = build_cluster(blobs_workload)
        assert cluster.num_workers == blobs_workload.num_workers
        assert len(test_dataset) == len(blobs_workload.test_dataset)
        total = sum(len(worker.dataset) for worker in cluster.workers)
        assert total == len(blobs_workload.train_dataset)

    def test_with_workers_copy(self, blobs_workload):
        scaled = blobs_workload.with_workers(2)
        assert scaled.num_workers == 2 and blobs_workload.num_workers == 4

    def test_with_partition_copy(self, blobs_workload):
        heterogeneous = blobs_workload.with_partition("noniid-fraction", fraction=0.5)
        cluster, _ = build_cluster(heterogeneous)
        assert cluster.num_workers == blobs_workload.num_workers

    def test_invalid_configuration(self, blobs_workload):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(
                name="bad",
                model_factory=blobs_workload.model_factory,
                train_dataset=blobs_workload.train_dataset,
                test_dataset=blobs_workload.test_dataset,
                optimizer_factory=blobs_workload.optimizer_factory,
                num_workers=0,
            )


class TestTrainingRun:
    def test_reaches_target_on_easy_problem(self, blobs_workload):
        cluster, test_dataset = build_cluster(blobs_workload)
        result = quick_run().execute(
            SynchronousStrategy(), cluster, test_dataset, workload_name="blobs"
        )
        assert result.reached_target
        assert result.final_accuracy >= 0.85
        assert result.communication_bytes > 0
        assert len(result.history) == result.evaluations

    def test_respects_step_budget(self, blobs_workload):
        cluster, test_dataset = build_cluster(blobs_workload)
        result = TrainingRun(accuracy_target=0.999999, max_steps=30, eval_every_steps=10).execute(
            SynchronousStrategy(), cluster, test_dataset
        )
        assert not result.reached_target
        assert result.parallel_steps <= 30 + 10

    def test_tracks_train_accuracy_when_requested(self, blobs_workload):
        cluster, test_dataset = build_cluster(blobs_workload)
        result = quick_run(track_train_accuracy=True).execute(
            SynchronousStrategy(), cluster, test_dataset,
            train_dataset=blobs_workload.train_dataset,
        )
        assert result.final_train_accuracy is not None
        assert result.generalization_gap is not None

    def test_summary_fields(self, blobs_workload):
        cluster, test_dataset = build_cluster(blobs_workload)
        result = quick_run().execute(FDAStrategy(threshold=2.0), cluster, test_dataset)
        summary = result.summary()
        assert summary["strategy"] == "LinearFDA"
        assert summary["communication_bytes"] == result.communication_bytes

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            TrainingRun(accuracy_target=0.0)
        with pytest.raises(ConfigurationError):
            TrainingRun(max_steps=0)
        with pytest.raises(ConfigurationError):
            TrainingRun(eval_every_steps=0)


class TestResultsAggregation:
    def test_summaries_and_reach_rate(self):
        table = ResultsTable(
            [
                fake_result("FDA", comm=100, steps=50),
                fake_result("FDA", comm=300, steps=70),
                fake_result("Sync", comm=10_000, steps=40),
                fake_result("Sync", comm=12_000, steps=45, reached=False),
            ]
        )
        fda = table.summarize("FDA")
        sync = table.summarize("Sync")
        assert fda.median_communication_bytes == 200
        assert sync.reach_rate == 0.5
        assert {s.strategy for s in table.summaries()} == {"FDA", "Sync"}

    def test_compare_strategies_ratios(self):
        results = [
            fake_result("FDA", comm=100, steps=50),
            fake_result("Sync", comm=10_000, steps=100),
        ]
        ratios = compare_strategies(results, "FDA", "Sync")
        assert ratios["communication_ratio"] == pytest.approx(100.0)
        assert ratios["computation_ratio"] == pytest.approx(2.0)

    def test_unknown_strategy_raises(self):
        with pytest.raises(ExperimentError):
            ResultsTable([fake_result("A")]).summarize("B")

    def test_best_run(self):
        results = [fake_result("A", comm=50), fake_result("A", comm=10), fake_result("B", comm=5)]
        assert best_run(results, "A").communication_bytes == 10

    def test_best_run_unknown(self):
        with pytest.raises(ExperimentError):
            best_run([], "A")


class TestKdeAndReporting:
    def test_kde_density_normalized(self):
        results = [fake_result("A", comm=10**i, steps=100 + 10 * i) for i in range(2, 8)]
        _, _, density = kde_density(results, grid_size=16)
        assert density.shape == (16, 16)
        assert density.sum() == pytest.approx(1.0)

    def test_kde_degenerate_points(self):
        results = [fake_result("A", comm=100, steps=10)] * 2
        _, _, density = kde_density(results, grid_size=8)
        assert density.sum() == pytest.approx(1.0)

    def test_kde_requires_results(self):
        with pytest.raises(ExperimentError):
            kde_density([])

    def test_log_kde_summary_centroids(self):
        results = [
            fake_result("FDA", comm=1_000, steps=100),
            fake_result("Sync", comm=1_000_000, steps=100),
        ]
        summaries = {s.strategy: s for s in log_kde_summary(results)}
        assert summaries["FDA"].centroid_log_comm < summaries["Sync"].centroid_log_comm

    def test_format_results_table_contains_strategies(self):
        text = format_results_table([fake_result("FDA"), fake_result("Sync", comm=99999)])
        assert "FDA" in text and "Sync" in text

    def test_format_comparison_mentions_ratio(self):
        text = format_comparison(
            [fake_result("FDA", comm=100), fake_result("Sync", comm=10_000)], "FDA", "Sync"
        )
        assert "100.0x" in text

    def test_format_run_history(self):
        result = fake_result("FDA")
        result.history = RunLogger()
        result.history.log(steps=10, communication_bytes=100, test_accuracy=0.5)
        text = format_run_history(result)
        assert "steps=" in text and "test_acc=0.500" in text


class TestSweeps:
    def test_sweep_theta_returns_point_per_value(self, blobs_workload):
        points = sweep_theta(blobs_workload, [0.5, 5.0], quick_run(max_steps=40))
        assert [p.value for p in points] == [0.5, 5.0]
        assert all(p.parameter == "theta" for p in points)

    def test_sweep_workers(self, blobs_workload):
        points = sweep_workers(
            blobs_workload, [2, 3], quick_run(max_steps=40), lambda: SynchronousStrategy()
        )
        assert [int(p.value) for p in points] == [2, 3]

    def test_sweep_strategies(self, blobs_workload):
        results = sweep_strategies(
            blobs_workload,
            [lambda: SynchronousStrategy(), lambda: FDAStrategy(threshold=2.0)],
            quick_run(max_steps=40),
        )
        assert {r.strategy for r in results} == {"Synchronous", "LinearFDA"}

    def test_empty_grids_rejected(self, blobs_workload):
        with pytest.raises(ConfigurationError):
            sweep_theta(blobs_workload, [], quick_run())
        with pytest.raises(ConfigurationError):
            sweep_workers(blobs_workload, [], quick_run(), lambda: SynchronousStrategy())


class TestRegistry:
    def test_table2_lists_all_learning_tasks(self):
        rows = table2()
        assert len(rows) == 5
        models = [row["model"] for row in rows]
        assert any("LeNet" in m for m in models)
        assert any("ConvNeXt" in m for m in models)
        # Model dimensions follow the paper's ordering within the CNN families.
        by_model = {row["model"]: row["d"] for row in rows}
        assert by_model["VGG16* (mini)"] > by_model["LeNet-5 (mini)"]
        assert by_model["DenseNet201 (mini)"] > by_model["DenseNet121 (mini)"]
