"""Reusable cross-engine parity harness.

The batched engine must be an *execution* optimization only: for every
protocol, every timeline (full or partial participation), every supported
model (including RNG-stateful ``Dropout``), and every optimizer configuration
(homogeneous or per-worker heterogeneous), a run on ``execution="batched"``
must reproduce the sequential run's training trajectory and its communication
ledger.  This module owns the scenario grid and the assertions; the parity
tests parametrize over it.

Conventions:

* Floating-point trajectories are compared with :data:`RTOL` (documented
  tolerance: batched GEMMs may legally re-associate reductions; in practice
  per-worker slices run the same BLAS kernels and trajectories come out
  bit-identical on common platforms).  ``exact=True`` upgrades a comparison
  to value-exactness (``rtol=0, atol=0`` — bitwise up to the sign of zero),
  which the SGD scenarios are held to.
* Ledgers — byte counts per category, synchronization decisions, per-worker
  step counts — are compared *exactly*: protocol decisions may not drift.
* Both engines of a pair are built identically (same data/model/timeline
  seeds), so any divergence is the engine's fault.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.backend import parity_tolerance
from repro.core.fda import FDATrainer
from repro.core.monitor import make_monitor
from repro.core.timeline import Timeline
from repro.data.datasets import Dataset
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.worker import Worker
from repro.nn.architectures import lenet5, mlp, transfer_head
from repro.nn.layers import (
    Activation,
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    GlobalAvgPool2D,
)
from repro.nn.model import Sequential
from repro.optim.adam import Adam

#: Documented cross-engine trajectory tolerance (see module docstring).
RTOL = 1e-6

#: The two execution engines under comparison, in canonical order.
EXECUTIONS = ("sequential", "batched")


def engine_tolerances(dtype=None, steps: int = 1) -> dict:
    """Cross-engine comparison bounds for a parity pair running at ``dtype``.

    float64 pairs (the default) are held to the documented :data:`RTOL` with
    zero absolute slack.  float32 pairs widen both bounds to the backend's
    eps-derived parity tolerance (sqrt-in-``steps``): the engines run the
    same kernels, but single-precision GEMMs are free to re-associate their
    reductions more visibly than the double-precision ones the golden
    trajectories were recorded with.
    """
    bounds = parity_tolerance(dtype, steps)
    return {"rtol": max(RTOL, bounds["rtol"]), "atol": bounds["atol"]}


# -- model grid -----------------------------------------------------------------


def mlp_factory():
    return mlp(6, 3, hidden_units=(10, 8), seed=11)


def lenet_factory():
    return lenet5(input_shape=(8, 8, 1), num_classes=4, seed=2)


def bn_factory():
    model = Sequential(
        [
            Conv2D(4, kernel_size=3, padding="same", activation=None, name="conv"),
            BatchNorm(name="bn"),
            Activation("relu", name="act"),
            AvgPool2D(2, name="pool"),
            GlobalAvgPool2D(name="gap"),
            Dense(4, activation=None, name="logits"),
        ],
        name="bn-net",
    )
    model.build((8, 8, 1), seed=3)
    return model


def dropout_factory():
    # transfer_head contains Dropout layers with private per-worker RNG
    # streams — the RNG-stateful case the batched kernels must replay.
    return transfer_head(6, num_classes=3, hidden_units=(12, 8), dropout_rate=0.25, seed=4)


#: name -> (model factory, per-sample shape, num classes); the model axis of
#: the scenario grid.
MODELS = {
    "mlp": (mlp_factory, (6,), 3),
    "lenet-conv": (lenet_factory, (8, 8, 1), 4),
    "batchnorm-net": (bn_factory, (8, 8, 1), 4),
    "dropout-head": (dropout_factory, (6,), 3),
}

#: name -> timeline dropout rate; the timeline axis of the scenario grid
#: (``full`` is the paper's lockstep protocol, ``dropout`` enables per-round
#: partial participation).
TIMELINES = {"full": 0.0, "dropout": 0.35}


# -- cluster construction --------------------------------------------------------


def make_cluster(
    execution: str,
    model_factory: Callable[[], Sequential] = mlp_factory,
    sample_shape: Tuple[int, ...] = (6,),
    num_classes: int = 3,
    num_workers: int = 8,
    optimizer_factory: Callable[[int], object] = lambda worker_id: Adam(0.01),
    batch_size: int = 8,
    dropout_rate: float = 0.0,
    timeline_seed: int = 5,
    data_seed: int = 7,
    **cluster_kwargs,
) -> SimulatedCluster:
    """One cluster of the parity pair.

    Everything random is seeded identically across the pair: worker shards
    (``data_seed``), per-worker sampler streams (the worker id), and the
    timeline (``timeline_seed``), so a sequential/batched pair sees the same
    data, the same masks, and the same mask-stream draws.
    ``optimizer_factory`` receives the worker id — return different
    configurations for heterogeneous-worker scenarios.
    """
    rng = np.random.default_rng(data_seed)
    workers = []
    for worker_id in range(num_workers):
        x = rng.normal(size=(40,) + tuple(sample_shape))
        y = rng.integers(0, num_classes, size=40)
        workers.append(
            Worker(
                worker_id,
                model_factory(),
                Dataset(x, y, num_classes),
                optimizer_factory(worker_id),
                batch_size=batch_size,
                seed=worker_id,
            )
        )
    if dropout_rate and "timeline" not in cluster_kwargs:
        cluster_kwargs["timeline"] = Timeline(
            num_workers, dropout_rate=dropout_rate, seed=timeline_seed
        )
    return SimulatedCluster(workers, execution=execution, **cluster_kwargs)


def make_cluster_pair(**kwargs) -> Tuple[SimulatedCluster, SimulatedCluster]:
    """The ``(sequential, batched)`` pair for one scenario."""
    return tuple(make_cluster(execution, **kwargs) for execution in EXECUTIONS)


# -- assertions ------------------------------------------------------------------


def assert_ledgers_equal(cluster_a: SimulatedCluster, cluster_b: SimulatedCluster) -> None:
    """Byte accounting must be *exactly* equal between the engines."""
    assert cluster_a.total_bytes == cluster_b.total_bytes
    for category in ("model-sync", "fda-state", "other"):
        assert cluster_a.tracker.bytes_for(category) == cluster_b.tracker.bytes_for(
            category
        )
    assert cluster_a.synchronization_count == cluster_b.synchronization_count
    assert [w.steps_performed for w in cluster_a.workers] == [
        w.steps_performed for w in cluster_b.workers
    ]


def assert_close(actual, desired, exact: bool = False, rtol: float = RTOL, **kwargs) -> None:
    """``allclose`` at the harness tolerance, or value-exact with ``exact=True``."""
    if exact:
        kwargs["atol"] = 0.0
        np.testing.assert_allclose(actual, desired, rtol=0.0, **kwargs)
    else:
        np.testing.assert_allclose(actual, desired, rtol=rtol, **kwargs)


def assert_cluster_states_match(
    cluster_a: SimulatedCluster,
    cluster_b: SimulatedCluster,
    exact: bool = False,
    rtol: float = RTOL,
    atol: float = 0.0,
) -> None:
    """Parameters, buffers, and optimizer step counts must match."""
    assert_close(cluster_a.parameter_matrix, cluster_b.parameter_matrix, exact, rtol=rtol, atol=atol)
    if cluster_a.buffer_matrix.shape[1]:
        assert_close(cluster_a.buffer_matrix, cluster_b.buffer_matrix, exact, rtol=rtol, atol=atol)
    assert [w.optimizer.step_count for w in cluster_a.workers] == [
        w.optimizer.step_count for w in cluster_b.workers
    ]


# -- scenario drivers ------------------------------------------------------------


def run_strategy_parity(
    strategy_factory,
    rounds: int = 12,
    exact: bool = False,
    dtype=None,
    **cluster_kwargs,
) -> Tuple[SimulatedCluster, SimulatedCluster]:
    """Run one strategy on both engines and assert full parity.

    ``strategy_factory`` is invoked once per engine (strategies are stateful).
    ``dtype`` selects the plane dtype for *both* clusters of the pair and
    widens the trajectory tolerance via :func:`engine_tolerances`; ledgers
    stay exact regardless.  Returns the ``(sequential, batched)`` clusters
    for extra assertions.
    """
    if dtype is not None:
        cluster_kwargs["dtype"] = dtype
    tol = engine_tolerances(dtype, steps=rounds)
    outcomes = {}
    for execution in EXECUTIONS:
        cluster = make_cluster(execution, **cluster_kwargs)
        strategy = strategy_factory().attach(cluster)
        outcomes[execution] = (cluster, [strategy.run_round() for _ in range(rounds)])
    seq_cluster, seq_rounds = outcomes["sequential"]
    bat_cluster, bat_rounds = outcomes["batched"]
    assert_close(
        [r.mean_loss for r in seq_rounds], [r.mean_loss for r in bat_rounds], exact, **tol
    )
    assert [r.synchronized for r in seq_rounds] == [r.synchronized for r in bat_rounds]
    assert [r.communication_bytes for r in seq_rounds] == [
        r.communication_bytes for r in bat_rounds
    ]
    assert [r.steps_advanced for r in seq_rounds] == [
        r.steps_advanced for r in bat_rounds
    ]
    assert_cluster_states_match(seq_cluster, bat_cluster, exact, **tol)
    assert_ledgers_equal(seq_cluster, bat_cluster)
    return seq_cluster, bat_cluster


def run_fda_parity(
    variant: str = "linear",
    threshold: float = 0.5,
    steps: int = 40,
    monitor_seed: int = 3,
    exact: bool = False,
    dtype=None,
    **cluster_kwargs,
) -> Tuple[FDATrainer, FDATrainer]:
    """Run the FDA trainer on both engines and assert full parity.

    Compares the per-step observables (losses, variance estimates, sync
    decisions, byte counts, active-worker counts), the final cluster state,
    and the ledgers.  ``dtype`` selects the plane dtype for both engines and
    widens the float tolerances via :func:`engine_tolerances` (decisions and
    ledgers stay exact).  Returns the ``(sequential, batched)`` trainers.
    """
    if dtype is not None:
        cluster_kwargs["dtype"] = dtype
    tol = engine_tolerances(dtype, steps=steps)
    results = {}
    for execution in EXECUTIONS:
        cluster = make_cluster(execution, **cluster_kwargs)
        monitor = make_monitor(variant, cluster.model_dimension, seed=monitor_seed)
        trainer = FDATrainer(cluster, monitor, threshold=threshold)
        results[execution] = (trainer, trainer.run_steps(steps))
    seq_trainer, seq_steps = results["sequential"]
    bat_trainer, bat_steps = results["batched"]
    assert_close(
        [r.mean_loss for r in seq_steps], [r.mean_loss for r in bat_steps], exact, **tol
    )
    if exact:
        assert_close(
            [r.variance_estimate for r in seq_steps],
            [r.variance_estimate for r in bat_steps],
            exact,
        )
    else:
        assert_close(
            [r.variance_estimate for r in seq_steps],
            [r.variance_estimate for r in bat_steps],
            rtol=tol["rtol"],
            atol=max(1e-9, tol["atol"]),
        )
    # Protocol decisions and the communication ledger are exact.
    assert [r.synchronized for r in seq_steps] == [r.synchronized for r in bat_steps]
    assert [r.communication_bytes for r in seq_steps] == [
        r.communication_bytes for r in bat_steps
    ]
    assert [r.active_workers for r in seq_steps] == [
        r.active_workers for r in bat_steps
    ]
    assert_cluster_states_match(seq_trainer.cluster, bat_trainer.cluster, exact, **tol)
    assert_ledgers_equal(seq_trainer.cluster, bat_trainer.cluster)
    return seq_trainer, bat_trainer


def run_population_parity(
    strategy_factory,
    rounds: int = 6,
    num_workers: int = 4,
    exact: bool = True,
    dtype=None,
    memory_budget: Optional[int] = None,
    executions: Sequence[str] = EXECUTIONS,
    **cluster_kwargs,
) -> None:
    """Population mode with cohort=all must be bit-identical to no population.

    For each execution engine, builds two identical clusters; one trains the
    strategy directly, the other trains it through a
    :class:`~repro.population.plane.ClientPopulation` with ``N == K`` clients
    (the workers' own shards as explicit client shards), cohort=all, and
    uniform weighting.  Because binding a full cohort is then an identity
    round-trip — fresh-reset followed by the client's own snapshot overlay,
    executing identical arithmetic — every observable must match *exactly*
    (``exact=True`` by default): per-round losses, sync decisions, byte
    ledgers, parameter/buffer planes, optimizer step counts, and the
    per-worker sampler/epoch RNG stream states.  ``memory_budget`` forwards
    to the population (small budgets force evict/rematerialize cycles through
    the middle of training — still bit-exact).
    """
    from repro.population import ClientPopulation, PopulationConfig

    if dtype is not None:
        cluster_kwargs["dtype"] = dtype
    for execution in executions:
        plain_cluster = make_cluster(execution, num_workers=num_workers, **cluster_kwargs)
        plain_strategy = strategy_factory().attach(plain_cluster)
        plain_rounds = [plain_strategy.run_round() for _ in range(rounds)]

        pop_cluster = make_cluster(execution, num_workers=num_workers, **cluster_kwargs)
        pop_strategy = strategy_factory().attach(pop_cluster)
        population = ClientPopulation(
            PopulationConfig(
                num_clients=num_workers,
                cohort_size=num_workers,
                weighting="uniform",
                memory_budget=memory_budget,
            ),
            shards=[worker.dataset for worker in pop_cluster.workers],
            # Mirror make_cluster's int-seeded workers: client c's training
            # streams start exactly where worker c's did.
            client_seed_fn=lambda client_id: client_id,
        )
        population.attach(pop_cluster, pop_strategy)
        pop_rounds = [population.run_round() for _ in range(rounds)]

        assert_close(
            [r.mean_loss for r in plain_rounds],
            [r.mean_loss for r in pop_rounds],
            exact,
        )
        assert [r.synchronized for r in plain_rounds] == [
            r.synchronized for r in pop_rounds
        ]
        assert [r.communication_bytes for r in plain_rounds] == [
            r.communication_bytes for r in pop_rounds
        ]
        assert [r.steps_advanced for r in plain_rounds] == [
            r.steps_advanced for r in pop_rounds
        ]
        assert_cluster_states_match(plain_cluster, pop_cluster, exact)
        assert_ledgers_equal(plain_cluster, pop_cluster)
        # The private training RNG streams must land in identical states: the
        # population consumed exactly the draws the materialized run did.
        for plain_worker, pop_worker in zip(plain_cluster.workers, pop_cluster.workers):
            assert (
                plain_worker._sampler._rng.bit_generator.state
                == pop_worker._sampler._rng.bit_generator.state
            )
            assert (
                plain_worker._epoch_iterator._rng.bit_generator.state
                == pop_worker._epoch_iterator._rng.bit_generator.state
            )


def run_masked_step_parity(
    masks: Sequence[Optional[np.ndarray]],
    exact: bool = False,
    **cluster_kwargs,
) -> Tuple[SimulatedCluster, SimulatedCluster]:
    """Drive both engines through an explicit per-step mask sequence.

    Bypasses the timeline's mask stream so property-based tests can feed
    arbitrary participation patterns (including empty and full masks)
    directly into ``cluster.step_all``.
    """
    seq_cluster, bat_cluster = make_cluster_pair(**cluster_kwargs)
    for mask in masks:
        loss_seq = seq_cluster.step_all(active=mask)
        loss_bat = bat_cluster.step_all(active=mask)
        assert_close(loss_seq, loss_bat, exact)
    assert_cluster_states_match(seq_cluster, bat_cluster, exact)
    assert_ledgers_equal(seq_cluster, bat_cluster)
    return seq_cluster, bat_cluster
