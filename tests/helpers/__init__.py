"""Shared test harnesses (importable as ``helpers.*`` from the tests)."""
