"""Documentation reference checks: docs must not rot.

Three guarantees, run as CI's dedicated docs job
(``python -m pytest tests/test_docs_refs.py``):

* every dotted ``repro.*`` reference in ``ARCHITECTURE.md`` and ``docs/``
  resolves — the module imports and any trailing attribute chain exists;
* every repo-relative file path those documents mention exists;
* the doctests embedded in :mod:`repro.compression` pass.
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil
import re
from pathlib import Path

import pytest

import repro.compression

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The documents whose references are checked.
DOC_FILES = sorted(
    [REPO_ROOT / "ARCHITECTURE.md", *(REPO_ROOT / "docs").glob("*.md")]
)

#: Dotted ``repro.something[.more]`` references (module paths, classes,
#: functions).  A trailing ``.py`` match is a file path, handled separately.
DOTTED_RE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+\b")

#: Dotted strings that are serialization format identifiers, not Python
#: references (the ``"format"`` fields of the emitted JSON documents).
FORMAT_IDENTIFIERS = {"repro.bench", "repro.run_results", "repro.sweep"}

#: Backtick-quoted repo paths: anything with a slash or a known suffix.
PATH_RE = re.compile(
    r"`([A-Za-z0-9_.\-/]+\.(?:py|md|json|yml|yaml|ini|cfg|toml))`"
)


def _doc_text(path: Path) -> str:
    return path.read_text(encoding="utf-8")


def _dotted_references() -> list:
    references = set()
    for doc in DOC_FILES:
        for match in DOTTED_RE.finditer(_doc_text(doc)):
            reference = match.group(0)
            if reference.endswith(".py"):
                continue  # a file path caught by the path check
            if reference in FORMAT_IDENTIFIERS:
                continue
            references.add((doc.name, reference))
    return sorted(references)


def _path_references() -> list:
    references = set()
    for doc in DOC_FILES:
        for match in PATH_RE.finditer(_doc_text(doc)):
            path = match.group(1)
            # Emitted artifacts (BENCH_*.json) exist only after a bench run on
            # a given machine; the docs may reference them by name.
            if Path(path).name.startswith("BENCH_"):
                continue
            references.add((doc.name, path))
    return sorted(references)


def _resolve(reference: str) -> None:
    """Import the longest module prefix, then getattr the remainder."""
    parts = reference.split(".")
    module = None
    consumed = 0
    for end in range(len(parts), 0, -1):
        try:
            module = importlib.import_module(".".join(parts[:end]))
            consumed = end
            break
        except ModuleNotFoundError:
            continue
    assert module is not None, f"no importable module prefix in {reference!r}"
    obj = module
    for attribute in parts[consumed:]:
        assert hasattr(obj, attribute), (
            f"{reference!r}: {'.'.join(parts[:consumed])} has no attribute "
            f"{attribute!r}"
        )
        obj = getattr(obj, attribute)


def test_docs_exist():
    assert DOC_FILES, "expected ARCHITECTURE.md and docs/*.md to exist"
    names = {doc.name for doc in DOC_FILES}
    assert "ARCHITECTURE.md" in names
    assert "paper_map.md" in names


@pytest.mark.parametrize(
    "doc, reference", _dotted_references(), ids=lambda value: str(value)
)
def test_dotted_reference_resolves(doc, reference):
    _resolve(reference)


@pytest.mark.parametrize(
    "doc, path", _path_references(), ids=lambda value: str(value)
)
def test_referenced_path_exists(doc, path):
    # Source paths may be written repo-relative or src-relative (repro/...).
    candidates = (REPO_ROOT / path, REPO_ROOT / "src" / path)
    assert any(candidate.exists() for candidate in candidates), (
        f"{doc} references missing path {path!r}"
    )


@pytest.mark.parametrize(
    "module_name",
    sorted(
        f"repro.compression.{info.name}"
        for info in pkgutil.iter_modules(repro.compression.__path__)
    )
    + ["repro.compression"],
)
def test_compression_doctests_pass(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module_name}: {results.failed} doctest failures"


def test_compression_package_has_doctests():
    """The docs job must actually exercise examples, not vacuously pass."""
    total = 0
    for info in pkgutil.iter_modules(repro.compression.__path__):
        module = importlib.import_module(f"repro.compression.{info.name}")
        finder = doctest.DocTestFinder()
        total += sum(len(test.examples) for test in finder.find(module))
    assert total >= 5, f"expected >= 5 doctest examples in repro/compression, found {total}"
