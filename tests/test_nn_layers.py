"""Tests for the neural-network layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ModelNotBuiltError, ShapeError
from repro.nn.layers import (
    Activation,
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    DenseBlock,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    TransitionDown,
)


def build(layer, input_shape, seed=0):
    layer.build(input_shape, np.random.default_rng(seed))
    return layer


def check_input_gradient(layer, x, rtol=1e-5, atol=1e-7):
    """Compare the layer's backward pass against a numerical input gradient.

    The scalar objective is ``sum(weights * forward(x))`` for a fixed random
    weighting, which exercises every output element.
    """
    rng = np.random.default_rng(99)
    out = layer.forward(x, training=True)
    weights = rng.normal(size=out.shape)
    analytic = layer.backward(weights)

    epsilon = 1e-6
    numerical = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_num = numerical.reshape(-1)
    for index in range(flat_x.size):
        original = flat_x[index]
        flat_x[index] = original + epsilon
        plus = float(np.sum(weights * layer.forward(x, training=True)))
        flat_x[index] = original - epsilon
        minus = float(np.sum(weights * layer.forward(x, training=True)))
        flat_x[index] = original
        flat_num[index] = (plus - minus) / (2 * epsilon)
    np.testing.assert_allclose(analytic, numerical, rtol=rtol, atol=atol)


def check_parameter_gradients(layer, x, rtol=1e-5, atol=1e-7):
    """Compare stored parameter gradients against numerical differentiation."""
    rng = np.random.default_rng(7)
    out = layer.forward(x, training=True)
    weights = rng.normal(size=out.shape)
    layer.backward(weights)
    analytic = [g.copy() for g in layer.gradients()]

    epsilon = 1e-6
    for param, grad in zip(layer.parameters(), analytic):
        numerical = np.zeros_like(param)
        flat_param = param.reshape(-1)
        flat_num = numerical.reshape(-1)
        for index in range(flat_param.size):
            original = flat_param[index]
            flat_param[index] = original + epsilon
            plus = float(np.sum(weights * layer.forward(x, training=True)))
            flat_param[index] = original - epsilon
            minus = float(np.sum(weights * layer.forward(x, training=True)))
            flat_param[index] = original
            flat_num[index] = (plus - minus) / (2 * epsilon)
        np.testing.assert_allclose(grad, numerical, rtol=rtol, atol=atol)


class TestDense:
    def test_output_shape_and_param_count(self):
        layer = build(Dense(7), (4,))
        assert layer.output_shape == (7,)
        assert layer.num_parameters == 4 * 7 + 7

    def test_forward_matches_matrix_product(self):
        layer = build(Dense(3, use_bias=False), (2,))
        x = np.array([[1.0, 2.0]])
        np.testing.assert_allclose(layer.forward(x), x @ layer.weight)

    def test_input_gradient(self):
        layer = build(Dense(5, activation="tanh"), (3,))
        check_input_gradient(layer, np.random.default_rng(0).normal(size=(4, 3)))

    def test_parameter_gradients(self):
        layer = build(Dense(4, activation="relu"), (3,))
        check_parameter_gradients(layer, np.random.default_rng(1).normal(size=(5, 3)) + 0.1)

    def test_rejects_wrong_input_width(self):
        layer = build(Dense(4), (3,))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((2, 5)))

    def test_backward_requires_training_forward(self):
        layer = build(Dense(4), (3,))
        layer.forward(np.zeros((2, 3)), training=False)
        with pytest.raises(ModelNotBuiltError):
            layer.backward(np.zeros((2, 4)))

    def test_invalid_units(self):
        with pytest.raises(ConfigurationError):
            Dense(0)


class TestConv2D:
    def test_same_padding_preserves_spatial_size(self):
        layer = build(Conv2D(4, kernel_size=3, padding="same"), (6, 6, 2))
        assert layer.output_shape == (6, 6, 4)

    def test_valid_padding_shrinks(self):
        layer = build(Conv2D(2, kernel_size=3, padding="valid"), (6, 6, 1))
        assert layer.output_shape == (4, 4, 2)

    def test_stride_two(self):
        layer = build(Conv2D(2, kernel_size=2, stride=2, padding="valid"), (6, 6, 1))
        assert layer.output_shape == (3, 3, 2)

    def test_forward_known_value(self):
        layer = build(Conv2D(1, kernel_size=2, padding="valid", use_bias=False), (2, 2, 1))
        layer.weight[...] = np.ones_like(layer.weight)
        x = np.arange(4, dtype=np.float64).reshape(1, 2, 2, 1)
        np.testing.assert_allclose(layer.forward(x), [[[[6.0]]]])

    def test_input_gradient(self):
        layer = build(Conv2D(3, kernel_size=3, padding="same", activation="tanh"), (5, 5, 2))
        check_input_gradient(layer, np.random.default_rng(3).normal(size=(2, 5, 5, 2)))

    def test_parameter_gradients(self):
        layer = build(Conv2D(2, kernel_size=3, padding="valid"), (4, 4, 1))
        check_parameter_gradients(layer, np.random.default_rng(4).normal(size=(2, 4, 4, 1)))

    def test_same_padding_with_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            build(Conv2D(2, kernel_size=3, stride=2, padding="same"), (6, 6, 1))

    def test_rejects_wrong_input_shape(self):
        layer = build(Conv2D(2, kernel_size=3), (6, 6, 1))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((1, 6, 6, 2)))


class TestPooling:
    def test_maxpool_forward(self):
        layer = build(MaxPool2D(2), (4, 4, 1))
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4, 1)
        np.testing.assert_array_equal(
            layer.forward(x)[0, :, :, 0], [[5.0, 7.0], [13.0, 15.0]]
        )

    def test_maxpool_backward_routes_to_argmax(self):
        layer = build(MaxPool2D(2), (2, 2, 1))
        x = np.array([[[[1.0], [3.0]], [[2.0], [0.0]]]])
        layer.forward(x, training=True)
        grad = layer.backward(np.array([[[[5.0]]]]))
        np.testing.assert_array_equal(grad[0, :, :, 0], [[0.0, 5.0], [0.0, 0.0]])

    def test_maxpool_input_gradient(self):
        layer = build(MaxPool2D(2), (4, 4, 2))
        # Use well-separated values so the argmax is stable under perturbation.
        x = np.random.default_rng(0).permutation(32).astype(np.float64).reshape(1, 4, 4, 2) * 10
        check_input_gradient(layer, x)

    def test_avgpool_forward(self):
        layer = build(AvgPool2D(2), (4, 4, 1))
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4, 1)
        np.testing.assert_array_equal(
            layer.forward(x)[0, :, :, 0], [[2.5, 4.5], [10.5, 12.5]]
        )

    def test_avgpool_input_gradient(self):
        layer = build(AvgPool2D(2), (4, 4, 3))
        check_input_gradient(layer, np.random.default_rng(2).normal(size=(2, 4, 4, 3)))

    def test_globalavgpool(self):
        layer = build(GlobalAvgPool2D(), (3, 3, 2))
        x = np.random.default_rng(5).normal(size=(2, 3, 3, 2))
        np.testing.assert_allclose(layer.forward(x), x.mean(axis=(1, 2)))
        check_input_gradient(layer, x)


def _col2im_pool_backward_reference(layer, grad_output):
    """The pre-vectorization backward scatter (patch matrix + col2im loop).

    Kept verbatim as the reference implementation for the flat ``np.add.at``
    scatter that replaced it; exercised for both pool types, including
    overlapping (stride < pool_size) windows.
    """
    from repro.nn.functional import col2im
    from repro.nn.layers import AvgPool2D as _Avg

    if isinstance(layer, _Avg):
        shape = layer._cache_shape
        rows = grad_output.shape[0] * grad_output.shape[1] * grad_output.shape[2]
        window = layer.pool_size * layer.pool_size
        channels = shape[3]
        grad_flat = grad_output.reshape(rows, channels) / float(window)
        grad_patches = np.repeat(grad_flat[:, None, :], window, axis=1)
    else:
        shape = layer._cache_shape
        rows = layer._cache_argmax.shape[0]
        window = layer.pool_size * layer.pool_size
        channels = shape[3]
        grad_patches = np.zeros((rows, window, channels), dtype=grad_output.dtype)
        grad_flat = grad_output.reshape(rows, channels)
        np.put_along_axis(
            grad_patches, layer._cache_argmax[:, None, :], grad_flat[:, None, :], axis=1
        )
    grad_columns = grad_patches.reshape(rows, window * channels)
    return col2im(
        grad_columns, shape, layer.pool_size, layer.pool_size, layer.stride, 0
    )


class TestPoolBackwardScatter:
    """The vectorized flat-index scatter must match the col2im reference."""

    @pytest.mark.parametrize("pool_cls", [MaxPool2D, AvgPool2D])
    @pytest.mark.parametrize(
        "pool_size,stride", [(2, 2), (3, 3), (3, 2), (2, 1)],
        ids=["2x2", "3x3", "overlap-3s2", "overlap-2s1"],
    )
    def test_matches_col2im_reference(self, pool_cls, pool_size, stride):
        rng = np.random.default_rng(42)
        layer = build(pool_cls(pool_size, stride=stride), (7, 7, 3))
        x = rng.normal(size=(4, 7, 7, 3))
        out = layer.forward(x, training=True)
        grad_output = rng.normal(size=out.shape)
        vectorized = layer.backward(grad_output)
        reference = _col2im_pool_backward_reference(layer, grad_output)
        np.testing.assert_allclose(vectorized, reference, rtol=1e-12, atol=1e-12)
        assert vectorized.shape == x.shape


class TestFlattenDropoutActivation:
    def test_flatten_round_trip(self):
        layer = build(Flatten(), (2, 3, 4))
        x = np.random.default_rng(0).normal(size=(5, 2, 3, 4))
        out = layer.forward(x, training=True)
        assert out.shape == (5, 24)
        np.testing.assert_array_equal(layer.backward(out), x)

    def test_dropout_inference_is_identity(self):
        layer = build(Dropout(0.5, seed=0), (10,))
        x = np.ones((4, 10))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_dropout_training_scales_survivors(self):
        layer = build(Dropout(0.5, seed=0), (1000,))
        out = layer.forward(np.ones((1, 1000)), training=True)
        survivors = out[out > 0]
        np.testing.assert_allclose(survivors, 2.0)
        assert 0.35 < survivors.size / 1000 < 0.65

    def test_dropout_backward_uses_same_mask(self):
        layer = build(Dropout(0.3, seed=1), (50,))
        out = layer.forward(np.ones((2, 50)), training=True)
        grad = layer.backward(np.ones((2, 50)))
        np.testing.assert_array_equal(grad > 0, out > 0)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)

    def test_activation_layer_gradient(self):
        layer = build(Activation("gelu"), (6,))
        check_input_gradient(layer, np.random.default_rng(0).normal(size=(3, 6)))


class TestBatchNorm:
    def test_training_normalizes_batch(self):
        layer = build(BatchNorm(), (8,))
        x = np.random.default_rng(0).normal(loc=5.0, scale=3.0, size=(64, 8))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_statistics_move_toward_batch(self):
        layer = build(BatchNorm(momentum=0.5), (4,))
        x = np.full((16, 4), 2.0)
        layer.forward(x, training=True)
        np.testing.assert_allclose(layer.running_mean, 1.0)  # 0.5*0 + 0.5*2

    def test_inference_uses_running_statistics(self):
        layer = build(BatchNorm(momentum=0.0), (2,))
        train_x = np.random.default_rng(1).normal(loc=3.0, size=(100, 2))
        layer.forward(train_x, training=True)
        out = layer.forward(train_x, training=False)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=0.1)

    def test_input_gradient_dense_input(self):
        layer = build(BatchNorm(), (5,))
        check_input_gradient(
            layer, np.random.default_rng(3).normal(size=(8, 5)), rtol=1e-4, atol=1e-6
        )

    def test_input_gradient_conv_input(self):
        layer = build(BatchNorm(), (3, 3, 2))
        check_input_gradient(
            layer, np.random.default_rng(4).normal(size=(4, 3, 3, 2)), rtol=1e-4, atol=1e-6
        )

    def test_parameter_gradients(self):
        layer = build(BatchNorm(), (4,))
        check_parameter_gradients(
            layer, np.random.default_rng(5).normal(size=(6, 4)), rtol=1e-4, atol=1e-6
        )

    def test_buffers_exposed(self):
        layer = build(BatchNorm(), (4,))
        assert len(layer.buffers()) == 2


class TestCompositeLayers:
    def test_dense_block_output_channels(self):
        layer = build(DenseBlock(num_layers=2, growth_rate=3), (4, 4, 2))
        assert layer.output_shape == (4, 4, 2 + 2 * 3)

    def test_dense_block_forward_backward_shapes(self):
        layer = build(DenseBlock(num_layers=2, growth_rate=2), (4, 4, 1))
        x = np.random.default_rng(0).normal(size=(3, 4, 4, 1))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert len(layer.parameters()) == len(layer.gradients())

    def test_dense_block_gradient_check(self):
        layer = build(DenseBlock(num_layers=1, growth_rate=2), (3, 3, 1))
        check_input_gradient(
            layer, np.random.default_rng(1).normal(size=(2, 3, 3, 1)), rtol=1e-4, atol=1e-6
        )

    def test_transition_down_halves_spatial_size(self):
        layer = build(TransitionDown(0.5), (6, 6, 8))
        assert layer.output_shape == (3, 3, 4)

    def test_transition_down_forward_backward(self):
        layer = build(TransitionDown(0.5), (4, 4, 4))
        x = np.random.default_rng(2).normal(size=(2, 4, 4, 4))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            DenseBlock(0, 4)
        with pytest.raises(ConfigurationError):
            TransitionDown(0.0)
